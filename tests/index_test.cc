#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "base/rng.h"
#include "index/kmer_index.h"
#include "index/suffix_array.h"
#include "seq/nucleotide_sequence.h"

namespace genalg::index {
namespace {

using seq::NucleotideSequence;

// ------------------------------------------------------------ SuffixArray.

TEST(SuffixArrayTest, BananaClassic) {
  auto sa = SuffixArray::Build("banana");
  // Suffixes sorted: a, ana, anana, banana, na, nana.
  EXPECT_EQ(sa.sa(), (std::vector<uint32_t>{5, 3, 1, 0, 4, 2}));
  EXPECT_EQ(sa.lcp(), (std::vector<uint32_t>{0, 1, 3, 0, 0, 2}));
  EXPECT_EQ(sa.LongestRepeatedSubstring(), 3u);  // "ana".
}

TEST(SuffixArrayTest, EmptyText) {
  auto sa = SuffixArray::Build("");
  EXPECT_EQ(sa.size(), 0u);
  EXPECT_FALSE(sa.Contains("A"));
  EXPECT_TRUE(sa.FindAll("A").empty());
}

TEST(SuffixArrayTest, FindAllMatchesNaiveScan) {
  Rng rng(41);
  std::string text = rng.RandomDna(3000);
  auto sa = SuffixArray::Build(text);
  for (size_t plen : {1u, 2u, 4u, 7u, 12u}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::string pattern =
          rng.Bernoulli(0.7)
              ? text.substr(rng.Uniform(text.size() - plen), plen)
              : rng.RandomDna(plen);
      std::vector<uint64_t> naive;
      for (size_t pos = 0; pos + pattern.size() <= text.size(); ++pos) {
        if (text.compare(pos, pattern.size(), pattern) == 0) {
          naive.push_back(pos);
        }
      }
      EXPECT_EQ(sa.FindAll(pattern), naive) << "len=" << plen;
      EXPECT_EQ(sa.CountOccurrences(pattern), naive.size());
      EXPECT_EQ(sa.Contains(pattern), !naive.empty());
    }
  }
}

TEST(SuffixArrayTest, PatternLongerThanText) {
  auto sa = SuffixArray::Build("ACG");
  EXPECT_FALSE(sa.Contains("ACGT"));
  EXPECT_TRUE(sa.FindAll("ACGT").empty());
}

TEST(SuffixArrayTest, EmptyPatternMatchesEverywhere) {
  auto sa = SuffixArray::Build("ACG");
  EXPECT_TRUE(sa.Contains(""));
  EXPECT_EQ(sa.FindAll("").size(), 3u);
  EXPECT_EQ(sa.CountOccurrences(""), 3u);
}

TEST(SuffixArrayTest, SuffixOrderIsCorrectProperty) {
  Rng rng(43);
  std::string text = rng.RandomDna(500);
  auto sa = SuffixArray::Build(text);
  // The permutation must sort the suffixes.
  for (size_t r = 1; r < sa.sa().size(); ++r) {
    std::string_view prev(text.data() + sa.sa()[r - 1],
                          text.size() - sa.sa()[r - 1]);
    std::string_view cur(text.data() + sa.sa()[r],
                         text.size() - sa.sa()[r]);
    EXPECT_LT(prev, cur);
    // And the LCP entry must be exact.
    size_t common = 0;
    while (common < prev.size() && common < cur.size() &&
           prev[common] == cur[common]) {
      ++common;
    }
    EXPECT_EQ(sa.lcp()[r], common);
  }
}

TEST(SuffixArrayTest, BuildsOverNucleotideSequence) {
  auto s = NucleotideSequence::Dna("ATTGCCATA").value();
  auto sa = SuffixArray::Build(s);
  EXPECT_TRUE(sa.Contains("GCC"));
  EXPECT_EQ(sa.FindAll("AT"), (std::vector<uint64_t>{0, 6}));
}

// -------------------------------------------------------------- KmerIndex.

std::vector<NucleotideSequence> MakeCorpus(Rng* rng, size_t docs,
                                           size_t len) {
  std::vector<NucleotideSequence> corpus;
  for (size_t i = 0; i < docs; ++i) {
    corpus.push_back(NucleotideSequence::Dna(rng->RandomDna(len)).value());
  }
  return corpus;
}

TEST(KmerIndexTest, RejectsBadK) {
  std::vector<NucleotideSequence> corpus;
  EXPECT_TRUE(KmerIndex::Build(corpus, 3).status().IsInvalidArgument());
  EXPECT_TRUE(KmerIndex::Build(corpus, 32).status().IsInvalidArgument());
  EXPECT_TRUE(KmerIndex::Build(corpus, 8).ok());
}

TEST(KmerIndexTest, LookupFindsAllPositions) {
  auto a = NucleotideSequence::Dna("ACGTACGTAA").value();
  auto b = NucleotideSequence::Dna("TTACGTACGT").value();
  auto idx = KmerIndex::Build({a, b}, 8).value();
  auto hits = idx.Lookup("ACGTACGT").value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].doc, 1u);
  EXPECT_EQ(hits[1].position, 2u);
  EXPECT_TRUE(idx.Lookup("AAAAAAAA").value().empty());
}

TEST(KmerIndexTest, LookupValidatesInput) {
  auto idx = KmerIndex::Build({}, 8).value();
  EXPECT_TRUE(idx.Lookup("ACGT").status().IsInvalidArgument());
  EXPECT_TRUE(idx.Lookup("ACGTACGN").status().IsInvalidArgument());
}

TEST(KmerIndexTest, AmbiguousWindowsSkipped) {
  auto s = NucleotideSequence::Dna("ACGTNACGT").value();
  auto idx = KmerIndex::Build({s}, 4).value();
  // Windows covering the N (positions 1..4) are absent.
  EXPECT_EQ(idx.TotalPostings(), 2u);  // "ACGT" at 0 and at 5.
  auto hits = idx.Lookup("ACGT").value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].position, 0u);
  EXPECT_EQ(hits[1].position, 5u);
}

TEST(KmerIndexTest, FindCandidatesRanksTrueSourceFirst) {
  Rng rng(47);
  auto corpus = MakeCorpus(&rng, 20, 500);
  auto idx = KmerIndex::Build(corpus, 11).value();
  // Query: a fragment of document 7 with light noise.
  std::string fragment = corpus[7].ToString().substr(120, 200);
  for (size_t i = 0; i < fragment.size(); i += 37) {
    fragment[i] = fragment[i] == 'A' ? 'C' : 'A';
  }
  auto query = NucleotideSequence::Dna(fragment).value();
  auto candidates = idx.FindCandidates(query, 2);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].doc, 7u);
  // The dominant diagonal points at the fragment origin.
  EXPECT_EQ(candidates[0].best_diagonal, 120);
}

TEST(KmerIndexTest, CandidatesSortedBysharedKmers) {
  Rng rng(53);
  auto corpus = MakeCorpus(&rng, 10, 300);
  auto idx = KmerIndex::Build(corpus, 9).value();
  auto query = corpus[3];
  auto candidates = idx.FindCandidates(query, 1);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].doc, 3u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].shared_kmers, candidates[i].shared_kmers);
  }
}

TEST(KmerIndexTest, MinSharedFilters) {
  Rng rng(59);
  auto corpus = MakeCorpus(&rng, 5, 200);
  auto idx = KmerIndex::Build(corpus, 9).value();
  auto query = corpus[0];
  size_t all = idx.FindCandidates(query, 1).size();
  size_t strict = idx.FindCandidates(query, 50).size();
  EXPECT_GE(all, strict);
  EXPECT_GE(strict, 1u);  // The identical document always qualifies.
}

TEST(KmerIndexTest, SelectivityEstimateBehaviour) {
  Rng rng(61);
  auto corpus = MakeCorpus(&rng, 10, 1000);
  auto idx = KmerIndex::Build(corpus, 8).value();
  // Short patterns are near-certain, long patterns near-impossible.
  EXPECT_GT(idx.EstimateContainsSelectivity(2), 0.95);
  EXPECT_LT(idx.EstimateContainsSelectivity(30), 1e-6);
  // Monotone non-increasing in pattern length.
  double prev = 1.1;
  for (size_t len = 1; len <= 20; ++len) {
    double s = idx.EstimateContainsSelectivity(len);
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
}

TEST(KmerIndexTest, PackKmerTwoBitEncoding) {
  auto s = NucleotideSequence::Dna("ACGT").value();
  uint64_t packed;
  ASSERT_TRUE(PackKmer(s, 0, 4, &packed));
  EXPECT_EQ(packed, 0b00011011u);  // A=0, C=1, G=2, T=3.
  auto amb = NucleotideSequence::Dna("ACGN").value();
  EXPECT_FALSE(PackKmer(amb, 0, 4, &packed));
  EXPECT_FALSE(PackKmer(s, 2, 4, &packed));  // Out of range.
}

// Cross-check: suffix-array search results equal NucleotideSequence::Find
// on unambiguous data (parameterized over corpus sizes).
class IndexAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexAgreementTest, SuffixArrayAgreesWithScan) {
  Rng rng(GetParam());
  auto dna = NucleotideSequence::Dna(rng.RandomDna(GetParam())).value();
  auto sa = SuffixArray::Build(dna);
  for (int trial = 0; trial < 5; ++trial) {
    std::string pattern = rng.RandomDna(3 + rng.Uniform(6));
    auto pat_seq = NucleotideSequence::Dna(pattern).value();
    std::vector<uint64_t> scan_hits;
    size_t pos = dna.Find(pat_seq, 0);
    while (pos != NucleotideSequence::npos) {
      scan_hits.push_back(pos);
      pos = dna.Find(pat_seq, pos + 1);
    }
    EXPECT_EQ(sa.FindAll(pattern), scan_hits);
  }
}

INSTANTIATE_TEST_SUITE_P(CorpusSizes, IndexAgreementTest,
                         ::testing::Values(64, 256, 1024, 4096));

}  // namespace
}  // namespace genalg::index
