// GenAlgServer integration tests: remote results bit-identical to
// in-process execution (single and 16-way concurrent), paging, errors,
// cancel, deadline, admission control (overload -> immediate rejection),
// session limits, graceful drain, and concurrent reads racing an ETL
// refresh under the database reader-writer gate.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algebra/signature.h"
#include "bql/bql.h"
#include "etl/pipeline.h"
#include "etl/source.h"
#include "etl/warehouse.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "udb/adapter.h"
#include "udb/database.h"

namespace genalg {
namespace {

std::string RowsToText(const udb::QueryResult& result) {
  std::string text;
  for (const auto& column : result.columns) text += column + "|";
  text += "\n";
  for (const auto& row : result.rows) {
    for (const auto& datum : row) text += datum.ToString() + "|";
    text += "\n";
  }
  return text;
}

// A query whose execution is dominated by O(n*m) alignment across every
// row — tens of milliseconds on this corpus, enough to make deadline,
// overload, and drain behavior deterministic.
std::string SlowQuery() {
  std::string pattern;
  for (int i = 0; i < 25; ++i) pattern += "ACGTTGCA";  // 200 bp.
  return "count sequences resembling " + pattern;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : source_("SRV", etl::SourceRepresentation::kFlatFile,
                         etl::SourceCapability::kLogged, 7) {}

  void SetUp() override {
    ASSERT_TRUE(algebra::RegisterStandardAlgebra(&registry_).ok());
    adapter_ = std::make_unique<udb::Adapter>(&registry_);
    ASSERT_TRUE(udb::RegisterStandardUdts(adapter_.get()).ok());
    db_ = std::make_unique<udb::Database>(adapter_.get());
    warehouse_ = std::make_unique<etl::Warehouse>(db_.get());
    ASSERT_TRUE(warehouse_->InitSchema().ok());
    ASSERT_TRUE(source_.Populate(30, 400).ok());
    pipeline_ = std::make_unique<etl::EtlPipeline>(warehouse_.get());
    ASSERT_TRUE(pipeline_->AddSource(&source_).ok());
    ASSERT_TRUE(pipeline_->InitialLoad().ok());
  }

  void TearDown() override {
    if (server_) server_->Shutdown();
  }

  void StartServer(server::ServerOptions options = {}) {
    server_ = std::make_unique<server::GenAlgServer>(db_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  Result<std::unique_ptr<net::GenAlgClient>> Connect() {
    return net::GenAlgClient::Connect("127.0.0.1", server_->port());
  }

  algebra::SignatureRegistry registry_;
  std::unique_ptr<udb::Adapter> adapter_;
  std::unique_ptr<udb::Database> db_;
  std::unique_ptr<etl::Warehouse> warehouse_;
  etl::SyntheticSource source_;
  std::unique_ptr<etl::EtlPipeline> pipeline_;
  std::unique_ptr<server::GenAlgServer> server_;
};

TEST_F(ServerTest, StartsOnEphemeralPortAndShutsDownIdempotently) {
  StartServer();
  EXPECT_TRUE(server_->running());
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
  server_->Shutdown();  // Second drain is a no-op.
}

TEST_F(ServerTest, SecondStartFails) {
  StartServer();
  EXPECT_TRUE(server_->Start().IsFailedPrecondition());
}

TEST_F(ServerTest, RemoteResultsAreBitIdenticalToInProcess) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const char* queries[] = {
      "count sequences",
      "count sequences with gc above 0.5",
      "show gc of sequences first 7",
      "show organism of sequences first 5",
      "find sequences with length above 300 first 5",
  };
  for (const char* bql : queries) {
    auto local = bql::RunBql(db_.get(), bql);
    ASSERT_TRUE(local.ok()) << bql;
    auto remote = (*client)->QueryAll(bql);
    ASSERT_TRUE(remote.ok()) << bql << ": " << remote.status().ToString();
    EXPECT_EQ(remote->columns, local->columns) << bql;
    EXPECT_EQ(RowsToText(*remote), RowsToText(*local)) << bql;
  }
}

TEST_F(ServerTest, SixteenConcurrentSessionsGetBitIdenticalResults) {
  StartServer();
  const char* queries[] = {
      "count sequences",
      "show gc of sequences first 10",
      "find sequences with gc above 0.45 first 8",
  };
  // In-process baselines first; served reads must match them bit for bit.
  std::vector<std::string> baselines;
  for (const char* bql : queries) {
    auto local = bql::RunBql(db_.get(), bql);
    ASSERT_TRUE(local.ok());
    baselines.push_back(RowsToText(*local));
  }
  constexpr int kSessions = 16;
  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] {
      auto client = net::GenAlgClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < 3; ++round) {
        int q = (s + round) % 3;
        auto remote = (*client)->QueryAll(queries[q]);
        if (!remote.ok()) {
          ++failures;
          return;
        }
        if (RowsToText(*remote) != baselines[q]) ++mismatches;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServerTest, SmallPagesDeliverTheFullResult) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto whole = bql::RunBql(db_.get(), "show gc of sequences first 9");
  ASSERT_TRUE(whole.ok());
  auto cursor = (*client)->Query("show gc of sequences first 9",
                                 /*page_rows=*/2);
  ASSERT_TRUE(cursor.ok());
  std::vector<udb::Row> all;
  std::vector<udb::Row> batch;
  size_t pages = 0;
  for (;;) {
    auto more = cursor->Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++pages;
    EXPECT_LE(batch.size(), 2u);
    for (auto& row : batch) all.push_back(std::move(row));
  }
  EXPECT_EQ(all.size(), whole->rows.size());
  EXPECT_GE(pages, 5u);  // ceil(9 / 2).
  EXPECT_EQ(cursor->columns(), whole->columns);
}

TEST_F(ServerTest, ZeroRowResultStillShipsColumns) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto remote =
      (*client)->QueryAll("find sequences with length above 999999");
  ASSERT_TRUE(remote.ok());
  EXPECT_TRUE(remote->rows.empty());
  EXPECT_FALSE(remote->columns.empty());
}

TEST_F(ServerTest, BadBqlSurfacesAsInvalidArgument) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto remote = (*client)->QueryAll("summon sequences");
  EXPECT_TRUE(remote.status().IsInvalidArgument())
      << remote.status().ToString();
  // The session survives a failed query.
  auto next = (*client)->QueryAll("count sequences");
  EXPECT_TRUE(next.ok()) << next.status().ToString();
}

TEST_F(ServerTest, TightDeadlineTimesOut) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  // An alignment scan is orders of magnitude over a 1 ms budget, so the
  // deadline check between execution and streaming always trips.
  auto remote =
      (*client)->QueryAll(SlowQuery(), /*page_rows=*/16, /*deadline_ms=*/1);
  EXPECT_TRUE(remote.status().IsFailedPrecondition())
      << remote.status().ToString();
  // And the session remains usable afterwards.
  auto next = (*client)->QueryAll("count sequences");
  EXPECT_TRUE(next.ok()) << next.status().ToString();
}

TEST_F(ServerTest, CancelStopsTheStreamAndFreesTheSession) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto cursor = (*client)->Query("show gc of sequences first 20",
                                 /*page_rows=*/1);
  ASSERT_TRUE(cursor.ok());
  std::vector<udb::Row> batch;
  auto first = cursor->Next(&batch);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(cursor->Cancel().ok());
  EXPECT_TRUE(cursor->done());
  // The wire is clean: the next query runs normally.
  auto next = (*client)->QueryAll("count sequences");
  EXPECT_TRUE(next.ok()) << next.status().ToString();
}

TEST_F(ServerTest, OverloadRejectsInsteadOfQueueing) {
  server::ServerOptions options;
  options.worker_threads = 1;
  options.admission_queue_depth = 1;
  StartServer(options);
  auto before = obs::Registry::Global().Snapshot();
  // Alignment scans take long enough that with 1 worker + 1 queue slot,
  // 8 simultaneous submissions must see rejections.
  constexpr int kClients = 8;
  const std::string slow_query = SlowQuery();
  std::atomic<int> ok_count{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> other{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&] {
      auto client = net::GenAlgClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++other;
        return;
      }
      auto result = (*client)->QueryAll(slow_query);
      if (result.ok()) {
        ++ok_count;
      } else if (result.status().IsResourceExhausted()) {
        ++overloaded;
      } else {
        ++other;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(overloaded.load(), 1)
      << "expected admission control to reject some of " << kClients
      << " concurrent queries (ok=" << ok_count.load() << ")";
  auto delta = obs::Registry::Global().Snapshot().Since(before);
  EXPECT_EQ(delta.counter("server.queries_rejected"),
            static_cast<uint64_t>(overloaded.load()));
}

TEST_F(ServerTest, SessionLimitRefusesExtraConnections) {
  server::ServerOptions options;
  options.max_sessions = 1;
  StartServer(options);
  auto first = Connect();
  ASSERT_TRUE(first.ok());
  auto second = Connect();
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();
  // Closing the first session frees the slot (reaped on next accept).
  (*first)->Close();
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto retry = Connect();
    if (retry.ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FAIL() << "session slot never freed";
}

TEST_F(ServerTest, PingRoundTripsAndEnsureAliveReconnects) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_TRUE((*client)->EnsureAlive().ok());
  // Break the connection underneath the client; EnsureAlive heals it.
  ASSERT_TRUE((*client)->Reconnect().ok());
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(ServerTest, ShutdownDrainsInFlightQueries) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  std::atomic<bool> query_ok{false};
  std::thread querier([&] {
    auto result = (*client)->QueryAll(SlowQuery());
    query_ok.store(result.ok());
  });
  // Give the query a moment to be admitted, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server_->Shutdown();
  querier.join();
  EXPECT_TRUE(query_ok.load()) << "in-flight query was not drained";
  // After shutdown the listener is gone.
  EXPECT_FALSE(Connect().ok());
}

// -------------------- Concurrent reads vs ETL refresh (the write side).

TEST_F(ServerTest, ConcurrentReadsSeeConsistentSnapshotsDuringRefresh) {
  StartServer();
  auto pre = bql::RunBql(db_.get(), "count sequences");
  ASSERT_TRUE(pre.ok());
  std::string pre_count = pre->rows[0][0].ToString();
  auto before = obs::Registry::Global().Snapshot();

  std::atomic<bool> writer_done{false};
  std::atomic<int> reader_failures{0};
  std::atomic<uint64_t> reads_done{0};
  std::vector<std::string> observed[4];
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      auto client = net::GenAlgClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++reader_failures;
        return;
      }
      while (!writer_done.load(std::memory_order_acquire)) {
        auto result = (*client)->QueryAll("count sequences");
        if (!result.ok()) {
          ++reader_failures;
          return;
        }
        observed[r].push_back(result->rows[0][0].ToString());
        ++reads_done;
      }
    });
  }

  // One maintenance round: churn the source, refresh the warehouse. The
  // delta application runs in a single transaction holding the write side
  // of the gate, so every served count must equal the pre- or the
  // post-refresh value — never a torn in-between.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(source_.EvolveStep(0.4, 0.3).ok());
  auto round = pipeline_->RunOnce();
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  writer_done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  auto post = bql::RunBql(db_.get(), "count sequences");
  ASSERT_TRUE(post.ok());
  std::string post_count = post->rows[0][0].ToString();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(reads_done.load(), 0u);
  for (int r = 0; r < 4; ++r) {
    for (const std::string& count : observed[r]) {
      EXPECT_TRUE(count == pre_count || count == post_count)
          << "torn read: saw " << count << ", expected " << pre_count
          << " (pre) or " << post_count << " (post)";
    }
  }

  // Pin the gate traffic: each served query took the read side, the
  // refresh took the write side exactly once.
  auto delta = obs::Registry::Global().Snapshot().Since(before);
  EXPECT_GE(delta.counter("udb.gate.read_acquires"), reads_done.load());
  EXPECT_GE(delta.counter("udb.gate.write_acquires"), 1u);
  EXPECT_GE(delta.counter("server.queries"), reads_done.load());
}

}  // namespace
}  // namespace genalg
