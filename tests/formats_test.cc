#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "base/rng.h"
#include "formats/embl.h"
#include "formats/fasta.h"
#include "formats/feature_text.h"
#include "formats/genalgxml.h"
#include "formats/genbank.h"
#include "formats/record.h"
#include "formats/tree.h"

namespace genalg::formats {
namespace {

using seq::NucleotideSequence;

SequenceRecord MakeRecord() {
  SequenceRecord r;
  r.accession = "SYN000042";
  r.version = 2;
  r.description = "synthetic test entry";
  r.organism = "Synthetica exempli";
  r.source_db = "SYNDB";
  r.sequence =
      NucleotideSequence::Dna("CCCCATGAAAGTCCAGGTTTAAGGGG").value();
  gdt::Feature gene;
  gene.id = "G1";
  gene.kind = gdt::FeatureKind::kGene;
  gene.span = {4, 22};
  gene.strand = gdt::Strand::kForward;
  gene.qualifiers["name"] = "testA";
  r.features.push_back(gene);
  gdt::Feature exon;
  exon.id = "E1";
  exon.kind = gdt::FeatureKind::kExon;
  exon.span = {4, 10};
  exon.strand = gdt::Strand::kReverse;
  exon.confidence = 0.75;
  exon.qualifiers["gene"] = "G1";
  r.features.push_back(exon);
  return r;
}

// ------------------------------------------------------------ Locations.

TEST(FeatureTextTest, ParseLocationForms) {
  auto fwd = ParseLocation("5..22");
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd->first, (gdt::Interval{4, 22}));
  EXPECT_EQ(fwd->second, gdt::Strand::kForward);

  auto rev = ParseLocation("complement(5..22)");
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ(rev->first, (gdt::Interval{4, 22}));
  EXPECT_EQ(rev->second, gdt::Strand::kReverse);

  EXPECT_TRUE(ParseLocation("oops").status().IsCorruption());
  EXPECT_TRUE(ParseLocation("0..5").status().IsCorruption());   // 1-based.
  EXPECT_TRUE(ParseLocation("9..5").status().IsCorruption());   // Inverted.
  EXPECT_TRUE(ParseLocation("a..b").status().IsCorruption());
}

TEST(FeatureTextTest, LocationRoundTrip) {
  gdt::Feature f;
  f.span = {4, 22};
  f.strand = gdt::Strand::kReverse;
  auto parsed = ParseLocation(FormatLocation(f));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, f.span);
  EXPECT_EQ(parsed->second, f.strand);
}

TEST(FeatureTextTest, QualifierParsing) {
  auto kv = ParseQualifierBody("name=\"testA\"");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->first, "name");
  EXPECT_EQ(kv->second, "testA");
  EXPECT_EQ(ParseQualifierBody("count=3")->second, "3");
  EXPECT_EQ(ParseQualifierBody("pseudo")->first, "pseudo");
  EXPECT_TRUE(ParseQualifierBody("=x").status().IsCorruption());
}

// ---------------------------------------------------------------- FASTA.

TEST(FastaTest, ParseBasic) {
  auto records = ParseFasta(">SEQ1 first sequence\nACGT\nACGT\n>SEQ2\nTTTT\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].accession, "SEQ1");
  EXPECT_EQ((*records)[0].description, "first sequence");
  EXPECT_EQ((*records)[0].sequence.ToString(), "ACGTACGT");
  EXPECT_EQ((*records)[1].accession, "SEQ2");
  EXPECT_EQ((*records)[1].description, "");
  EXPECT_EQ((*records)[1].sequence.ToString(), "TTTT");
}

TEST(FastaTest, RejectsMalformedInput) {
  EXPECT_TRUE(ParseFasta("ACGT\n").status().IsCorruption());
  EXPECT_TRUE(ParseFasta(">\nACGT\n").status().IsCorruption());
  EXPECT_TRUE(ParseFasta(">S1\nAC9T\n").status().IsCorruption());
}

TEST(FastaTest, EmptyInputYieldsNoRecords) {
  EXPECT_TRUE(ParseFasta("")->empty());
  EXPECT_TRUE(ParseFasta("\n\n")->empty());
}

TEST(FastaTest, WriteParseRoundTrip) {
  Rng rng(71);
  std::vector<SequenceRecord> records;
  for (int i = 0; i < 4; ++i) {
    SequenceRecord r;
    r.accession = "SEQ" + std::to_string(i);
    r.description = i % 2 ? "" : "entry number " + std::to_string(i);
    r.sequence =
        NucleotideSequence::Dna(rng.RandomDna(37 * (i + 1))).value();
    records.push_back(std::move(r));
  }
  auto back = ParseFasta(WriteFasta(records, 50));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].accession, records[i].accession);
    EXPECT_EQ((*back)[i].description, records[i].description);
    EXPECT_EQ((*back)[i].sequence, records[i].sequence);
  }
}

// -------------------------------------------------------------- GenBank.

TEST(GenBankTest, WriteParseRoundTrip) {
  std::vector<SequenceRecord> records = {MakeRecord()};
  std::string text = WriteGenBank(records);
  auto back = ParseGenBank(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
  ASSERT_EQ(back->size(), 1u);
  const SequenceRecord& r = (*back)[0];
  EXPECT_EQ(r.accession, "SYN000042");
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(r.description, "synthetic test entry");
  EXPECT_EQ(r.organism, "Synthetica exempli");
  EXPECT_EQ(r.sequence, records[0].sequence);
  ASSERT_EQ(r.features.size(), 2u);
  EXPECT_EQ(r.features[0], records[0].features[0]);
  EXPECT_EQ(r.features[1], records[0].features[1]);
}

TEST(GenBankTest, MultipleRecords) {
  SequenceRecord a = MakeRecord();
  SequenceRecord b = MakeRecord();
  b.accession = "SYN000043";
  b.features.clear();
  auto back = ParseGenBank(WriteGenBank({a, b}));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[1].accession, "SYN000043");
  EXPECT_TRUE((*back)[1].features.empty());
}

TEST(GenBankTest, DetectsLengthMismatch) {
  // B10: noisy entries must be detected. Declare 10 bp, carry 4.
  std::string text =
      "LOCUS       BAD1 10 bp DNA SYN\n"
      "ORIGIN\n"
      "        1 acgt\n"
      "//\n";
  EXPECT_TRUE(ParseGenBank(text).status().IsCorruption());
}

TEST(GenBankTest, DetectsStructuralErrors) {
  EXPECT_TRUE(ParseGenBank("//\n").status().IsCorruption());
  EXPECT_TRUE(ParseGenBank("DEFINITION  x\n").status().IsCorruption());
  EXPECT_TRUE(ParseGenBank("LOCUS       A 0 bp DNA\nORIGIN\n")
                  .status()
                  .IsCorruption());  // Missing //.
  std::string bad_qualifier =
      "LOCUS       A 0 bp DNA\n"
      "FEATURES             Location/Qualifiers\n"
      "                     /name=\"x\"\n"
      "ORIGIN\n"
      "//\n";
  EXPECT_TRUE(ParseGenBank(bad_qualifier).status().IsCorruption());
}

TEST(GenBankTest, UnknownFeatureKeysRoundTripViaOther) {
  SequenceRecord r;
  r.accession = "A1";
  r.sequence = NucleotideSequence::Dna("ACGTACGT").value();
  gdt::Feature f;
  f.id = "X1";
  f.kind = gdt::FeatureKind::kOther;
  f.span = {0, 4};
  f.qualifiers["key"] = "misc_binding";
  r.features.push_back(f);
  auto back = ParseGenBank(WriteGenBank({r}));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)[0].features.size(), 1u);
  EXPECT_EQ((*back)[0].features[0].kind, gdt::FeatureKind::kOther);
  EXPECT_EQ((*back)[0].features[0].qualifiers.at("key"), "misc_binding");
}

// ----------------------------------------------------------------- EMBL.

TEST(EmblTest, WriteParseRoundTrip) {
  std::vector<SequenceRecord> records = {MakeRecord()};
  std::string text = WriteEmbl(records);
  auto back = ParseEmbl(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
  ASSERT_EQ(back->size(), 1u);
  const SequenceRecord& r = (*back)[0];
  EXPECT_EQ(r.accession, "SYN000042");
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(r.description, "synthetic test entry");
  EXPECT_EQ(r.organism, "Synthetica exempli");
  EXPECT_EQ(r.source_db, "SYNDB");
  EXPECT_EQ(r.sequence, records[0].sequence);
  ASSERT_EQ(r.features.size(), 2u);
  EXPECT_EQ(r.features[0], records[0].features[0]);
  EXPECT_EQ(r.features[1], records[0].features[1]);
}

TEST(EmblTest, DetectsLengthMismatch) {
  std::string text =
      "ID   BAD1; SV 1; linear; DNA; SYNDB; 99 BP.\n"
      "SQ   Sequence 99 BP;\n"
      "     acgt 4\n"
      "//\n";
  EXPECT_TRUE(ParseEmbl(text).status().IsCorruption());
}

TEST(EmblTest, GenBankAndEmblAgreeOnTheSameRecord) {
  // The same biological entry must survive either wrapper identically —
  // this is exactly what the warehouse integrator relies on (C2).
  SequenceRecord r = MakeRecord();
  auto via_genbank = ParseGenBank(WriteGenBank({r}));
  auto via_embl = ParseEmbl(WriteEmbl({r}));
  ASSERT_TRUE(via_genbank.ok());
  ASSERT_TRUE(via_embl.ok());
  const SequenceRecord& a = (*via_genbank)[0];
  const SequenceRecord& b = (*via_embl)[0];
  EXPECT_EQ(a.accession, b.accession);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.organism, b.organism);
}

// ----------------------------------------------------------------- Tree.

TEST(TreeTest, ParseWriteRoundTrip) {
  std::string text =
      "Sequence : SYN1\n"
      "  Description : hello\n"
      "  Feature : gene\n"
      "    Span : 5..22\n"
      "  DNA : ACGT\n"
      "Sequence : SYN2\n";
  auto roots = ParseTree(text);
  ASSERT_TRUE(roots.ok()) << roots.status().ToString();
  ASSERT_EQ(roots->size(), 2u);
  EXPECT_EQ((*roots)[0].tag, "Sequence");
  EXPECT_EQ((*roots)[0].value, "SYN1");
  ASSERT_EQ((*roots)[0].children.size(), 3u);
  EXPECT_EQ((*roots)[0].children[1].children[0].tag, "Span");
  EXPECT_EQ(WriteTree(*roots), text);
  EXPECT_EQ((*roots)[0].SubtreeSize(), 5u);
  EXPECT_NE((*roots)[0].Child("DNA"), nullptr);
  EXPECT_EQ((*roots)[0].Child("Nope"), nullptr);
}

TEST(TreeTest, RejectsBadIndentation) {
  EXPECT_TRUE(ParseTree(" Odd : x\n").status().IsCorruption());
  EXPECT_TRUE(ParseTree("A : 1\n    Jump : x\n").status().IsCorruption());
}

TEST(TreeTest, RecordTreeRoundTrip) {
  SequenceRecord r = MakeRecord();
  r.attributes["lab"] = "building 7";
  TreeNode tree = RecordToTree(r);
  // Survives a text round trip too.
  auto reparsed = ParseTree(WriteTree({tree}));
  ASSERT_TRUE(reparsed.ok());
  auto back = TreeToRecord((*reparsed)[0]);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, r);
}

TEST(TreeTest, TreeToRecordValidates) {
  TreeNode wrong{"Gene", "X", {}};
  EXPECT_TRUE(TreeToRecord(wrong).status().IsCorruption());
}

// ------------------------------------------------------------ GenAlgXML.

TEST(GenAlgXmlTest, WriteParseRoundTrip) {
  SequenceRecord r = MakeRecord();
  r.attributes["lab"] = "building 7";
  auto back = ParseGenAlgXml(WriteGenAlgXml({r}));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0], r);
}

TEST(GenAlgXmlTest, EscapingSurvives) {
  SequenceRecord r;
  r.accession = "X<&>1";
  r.description = "a \"quoted\" & <tagged> entry";
  r.sequence = NucleotideSequence::Dna("ACGT").value();
  auto back = ParseGenAlgXml(WriteGenAlgXml({r}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].accession, r.accession);
  EXPECT_EQ((*back)[0].description, r.description);
}

TEST(GenAlgXmlTest, RejectsMalformedXml) {
  EXPECT_TRUE(ParseGenAlgXml("<genalg>").status().IsCorruption());
  EXPECT_TRUE(
      ParseGenAlgXml("<genalg></wrong>").status().IsCorruption());
  EXPECT_TRUE(ParseGenAlgXml("<notgenalg></notgenalg>")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(ParseGenAlgXml("<genalg><sequence></sequence></genalg>")
                  .status()
                  .IsCorruption());  // Missing accession.
  EXPECT_TRUE(ParseGenAlgXml("<genalg>&bogus;</genalg>")
                  .status()
                  .IsCorruption());
}

TEST(GenAlgXmlTest, AcceptsPrologAndSelfClosingFeatures) {
  std::string text =
      "<?xml version=\"1.0\"?>\n"
      "<genalg>\n"
      "  <sequence accession=\"A1\" version=\"1\">\n"
      "    <dna>ACGT</dna>\n"
      "    <feature id=\"F1\" kind=\"gene\" begin=\"0\" end=\"4\" "
      "strand=\"+\"/>\n"
      "  </sequence>\n"
      "</genalg>\n";
  auto records = ParseGenAlgXml(text);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ((*records)[0].features.size(), 1u);
  EXPECT_EQ((*records)[0].features[0].span, (gdt::Interval{0, 4}));
}

TEST(GenBankTest, WrappedDefinitionContinuationLines) {
  std::string text =
      "LOCUS       W1 4 bp DNA SYN\n"
      "DEFINITION  a definition that\n"
      "            continues on the next line\n"
      "ORIGIN\n"
      "        1 acgt\n"
      "//\n";
  auto records = ParseGenBank(text);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ((*records)[0].description,
            "a definition that continues on the next line");
}

TEST(EmblTest, MultipleDeLinesConcatenate) {
  std::string text =
      "ID   W2; SV 1; linear; DNA; SYNDB; 4 BP.\n"
      "DE   first half\n"
      "DE   second half\n"
      "XX\n"
      "SQ   Sequence 4 BP;\n"
      "     acgt 4\n"
      "//\n";
  auto records = ParseEmbl(text);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ((*records)[0].description, "first half second half");
}

TEST(GenBankTest, EmptySequenceEntry) {
  std::string text =
      "LOCUS       E0 0 bp DNA SYN\n"
      "ORIGIN\n"
      "//\n";
  auto records = ParseGenBank(text);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE((*records)[0].sequence.empty());
  // And it survives a write/parse cycle.
  auto back = ParseGenBank(WriteGenBank(*records));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].accession, "E0");
}

TEST(FeatureTextTest, ConfidenceQualifierRoundTrip) {
  SequenceRecord r;
  r.accession = "CQ1";
  r.sequence = NucleotideSequence::Dna("ACGTACGTACGT").value();
  gdt::Feature f;
  f.id = "F1";
  f.kind = gdt::FeatureKind::kVariant;
  f.span = {2, 6};
  f.confidence = 0.25;
  r.features.push_back(f);
  auto back = ParseGenBank(WriteGenBank({r}));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back)[0].features[0].confidence, 0.25);
  // A confidence outside [0,1] in the wild is flagged as corruption.
  std::string bad =
      "LOCUS       B1 4 bp DNA SYN\n"
      "FEATURES             Location/Qualifiers\n"
      "     gene            1..4\n"
      "                     /confidence=\"7.5\"\n"
      "ORIGIN\n"
      "        1 acgt\n"
      "//\n";
  EXPECT_TRUE(ParseGenBank(bad).status().IsCorruption());
}

// Round-trip property across all four structured formats.
class FormatRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(FormatRoundTripTest, AllWrappersPreserveTheRecord) {
  Rng rng(GetParam());
  SequenceRecord r;
  r.accession = "RT" + std::to_string(GetParam());
  r.version = 1 + static_cast<int>(rng.Uniform(5));
  r.description = "round trip " + std::to_string(GetParam());
  r.organism = "Synthetica exempli";
  r.source_db = "SYNDB";
  r.sequence = NucleotideSequence::Dna(
                   rng.RandomString(40 + rng.Uniform(200), "ACGTN"))
                   .value();
  size_t n_features = rng.Uniform(4);
  for (size_t i = 0; i < n_features; ++i) {
    gdt::Feature f;
    f.id = "F" + std::to_string(i);
    f.kind = static_cast<gdt::FeatureKind>(rng.Uniform(10));
    uint64_t begin = rng.Uniform(r.sequence.size() - 1);
    f.span = {begin, begin + 1 + rng.Uniform(r.sequence.size() - begin)};
    f.strand =
        rng.Bernoulli(0.5) ? gdt::Strand::kForward : gdt::Strand::kReverse;
    f.qualifiers["n"] = std::to_string(i);
    r.features.push_back(f);
  }

  auto genbank = ParseGenBank(WriteGenBank({r}));
  ASSERT_TRUE(genbank.ok()) << genbank.status().ToString();
  EXPECT_EQ((*genbank)[0].sequence, r.sequence);
  EXPECT_EQ((*genbank)[0].features, r.features);

  auto embl = ParseEmbl(WriteEmbl({r}));
  ASSERT_TRUE(embl.ok()) << embl.status().ToString();
  EXPECT_EQ((*embl)[0].sequence, r.sequence);
  EXPECT_EQ((*embl)[0].features, r.features);

  auto xml = ParseGenAlgXml(WriteGenAlgXml({r}));
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  EXPECT_EQ((*xml)[0], r);

  auto tree = TreeToRecord(RecordToTree(r));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(*tree, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatRoundTripTest,
                         ::testing::Range(100, 112));

// ------------------------------------------------- Fuzz-ish robustness.
//
// Repository dumps arrive over flaky transfers: truncated mid-record,
// spliced with garbage, or with whole spans overwritten. Whatever the
// parsers are fed, they must return a Status — never crash, loop, or
// read out of bounds (the ASan CI job keeps this honest).

std::vector<std::string> FuzzCorpus(Rng* rng) {
  std::vector<SequenceRecord> records;
  for (int i = 0; i < 3; ++i) {
    SequenceRecord r = MakeRecord();
    r.accession = "FZ" + std::to_string(i);
    r.sequence = NucleotideSequence::Dna(
                     rng->RandomString(30 + rng->Uniform(120), "ACGTN"))
                     .value();
    records.push_back(std::move(r));
  }
  return {WriteGenBank(records), WriteEmbl(records), WriteFasta(records),
          WriteGenAlgXml(records)};
}

void ExpectParsersSurvive(const std::string& text) {
  // The parse may succeed or fail; it must only do so through Status.
  (void)ParseGenBank(text).status();
  (void)ParseEmbl(text).status();
  (void)ParseFasta(text).status();
  (void)ParseGenAlgXml(text).status();
}

class FormatFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FormatFuzzTest, TruncatedInputsReturnStatusNotCrash) {
  Rng rng(GetParam());
  for (const std::string& text : FuzzCorpus(&rng)) {
    // Every prefix in coarse steps, plus random cut points mid-token.
    for (size_t cut = 0; cut < text.size(); cut += 7) {
      ExpectParsersSurvive(text.substr(0, cut));
    }
    for (int i = 0; i < 32; ++i) {
      ExpectParsersSurvive(text.substr(0, rng.Uniform(text.size() + 1)));
    }
  }
}

TEST_P(FormatFuzzTest, GarbageSplicedInputsReturnStatusNotCrash) {
  Rng rng(GetParam());
  // NB: the NUL byte is appended separately — a literal "\x00..." would
  // truncate the C-string at the first byte.
  std::string bytes = "\x01\x07\x7f\xff ACGTacgt0123456789..//==\"\"\n\r\t<>&";
  bytes.push_back('\0');
  for (const std::string& text : FuzzCorpus(&rng)) {
    for (int trial = 0; trial < 24; ++trial) {
      std::string mutated = text;
      // Overwrite a random span with random bytes.
      size_t begin = rng.Uniform(mutated.size());
      size_t len = 1 + rng.Uniform(64);
      for (size_t i = begin; i < std::min(begin + len, mutated.size());
           ++i) {
        mutated[i] = bytes[rng.Uniform(bytes.size())];
      }
      // Splice a random insertion at a random point.
      mutated.insert(rng.Uniform(mutated.size()),
                     rng.RandomString(rng.Uniform(48), bytes));
      ExpectParsersSurvive(mutated);
    }
  }
}

TEST_P(FormatFuzzTest, PureGarbageReturnsStatusNotCrash) {
  Rng rng(GetParam());
  const std::string alphabet =
      "LOCUS ID SQ // >\n\r\t\"/=<>&defline ORIGIN FT abc\x01\xff";
  for (int trial = 0; trial < 48; ++trial) {
    ExpectParsersSurvive(
        rng.RandomString(rng.Uniform(2048), alphabet));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzzTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace genalg::formats
