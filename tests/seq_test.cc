#include <gtest/gtest.h>

#include <string>

#include "base/bytes.h"
#include "base/rng.h"
#include "seq/alphabet.h"
#include "seq/codon_table.h"
#include "seq/nucleotide_sequence.h"
#include "seq/protein_sequence.h"

namespace genalg::seq {
namespace {

// -------------------------------------------------------------- Alphabet.

TEST(AlphabetTest, CanonicalBasesRoundTrip) {
  for (char c : std::string("ACGT")) {
    BaseCode code;
    ASSERT_TRUE(CharToBase(c, &code)) << c;
    EXPECT_TRUE(IsUnambiguousBase(code));
    EXPECT_EQ(BaseToChar(code, Alphabet::kDna), c);
  }
}

TEST(AlphabetTest, LowercaseAccepted) {
  BaseCode a, b;
  ASSERT_TRUE(CharToBase('a', &a));
  ASSERT_TRUE(CharToBase('A', &b));
  EXPECT_EQ(a, b);
}

TEST(AlphabetTest, UracilSharesTheTBit) {
  BaseCode u, t;
  ASSERT_TRUE(CharToBase('U', &u));
  ASSERT_TRUE(CharToBase('T', &t));
  EXPECT_EQ(u, t);
  EXPECT_EQ(BaseToChar(u, Alphabet::kRna), 'U');
  EXPECT_EQ(BaseToChar(u, Alphabet::kDna), 'T');
}

TEST(AlphabetTest, AllIupacLettersRoundTrip) {
  for (char c : std::string("ACGTRYSWKMBDHVN-")) {
    BaseCode code;
    ASSERT_TRUE(CharToBase(c, &code)) << c;
    EXPECT_EQ(BaseToChar(code, Alphabet::kDna), c) << c;
  }
}

TEST(AlphabetTest, InvalidCharactersRejected) {
  BaseCode code;
  EXPECT_FALSE(CharToBase('Q', &code));
  EXPECT_FALSE(CharToBase('5', &code));
  EXPECT_FALSE(CharToBase(' ', &code));
}

TEST(AlphabetTest, ComplementIsWatsonCrick) {
  auto comp = [](char c) {
    BaseCode code;
    EXPECT_TRUE(CharToBase(c, &code));
    return BaseToChar(ComplementBase(code), Alphabet::kDna);
  };
  EXPECT_EQ(comp('A'), 'T');
  EXPECT_EQ(comp('T'), 'A');
  EXPECT_EQ(comp('C'), 'G');
  EXPECT_EQ(comp('G'), 'C');
  // Ambiguity codes complement as sets.
  EXPECT_EQ(comp('R'), 'Y');  // A/G -> T/C.
  EXPECT_EQ(comp('Y'), 'R');
  EXPECT_EQ(comp('S'), 'S');  // C/G self-complementary.
  EXPECT_EQ(comp('W'), 'W');
  EXPECT_EQ(comp('K'), 'M');
  EXPECT_EQ(comp('M'), 'K');
  EXPECT_EQ(comp('N'), 'N');
  EXPECT_EQ(comp('-'), '-');
}

TEST(AlphabetTest, ComplementIsInvolution) {
  for (int code = 0; code < 16; ++code) {
    EXPECT_EQ(ComplementBase(ComplementBase(static_cast<BaseCode>(code))),
              code);
  }
}

TEST(AlphabetTest, CardinalityAndCompatibility) {
  BaseCode n, r, a, t;
  CharToBase('N', &n);
  CharToBase('R', &r);
  CharToBase('A', &a);
  CharToBase('T', &t);
  EXPECT_EQ(BaseCardinality(n), 4);
  EXPECT_EQ(BaseCardinality(r), 2);
  EXPECT_EQ(BaseCardinality(a), 1);
  EXPECT_EQ(BaseCardinality(kBaseGap), 0);
  EXPECT_TRUE(BasesCompatible(n, a));
  EXPECT_TRUE(BasesCompatible(r, a));
  EXPECT_FALSE(BasesCompatible(r, t));  // R = A/G cannot be T.
  EXPECT_FALSE(BasesCompatible(kBaseGap, a));
}

// -------------------------------------------------- NucleotideSequence.

TEST(NucleotideSequenceTest, FromStringToStringRoundTrip) {
  auto s = NucleotideSequence::Dna("ACGTRYN");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 7u);
  EXPECT_EQ(s->ToString(), "ACGTRYN");
}

TEST(NucleotideSequenceTest, EmptySequence) {
  auto s = NucleotideSequence::Dna("");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(s->ToString(), "");
  EXPECT_EQ(s->GcContent(), 0.0);
}

TEST(NucleotideSequenceTest, RejectsInvalidCharacterWithPosition) {
  auto s = NucleotideSequence::Dna("ACGQ");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsInvalidArgument());
  EXPECT_NE(s.status().message().find("position 3"), std::string::npos);
}

TEST(NucleotideSequenceTest, RnaRendersUracil) {
  auto s = NucleotideSequence::Rna("ACGU");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "ACGU");
  // 'T' accepted as synonym on input.
  auto t = NucleotideSequence::Rna("ACGT");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "ACGU");
  EXPECT_EQ(*s, *t);
}

TEST(NucleotideSequenceTest, SetAndAt) {
  auto s = NucleotideSequence::Dna("AAAA").value();
  s.Set(2, kBaseG);
  EXPECT_EQ(s.ToString(), "AAGA");
  EXPECT_EQ(s.At(2), kBaseG);
}

TEST(NucleotideSequenceTest, OddAndEvenLengthPacking) {
  for (size_t len : {1u, 2u, 3u, 8u, 9u, 100u, 101u}) {
    Rng rng(len);
    std::string text = rng.RandomDna(len);
    auto s = NucleotideSequence::Dna(text).value();
    EXPECT_EQ(s.ToString(), text);
    EXPECT_EQ(s.PackedBytes(), (len + 1) / 2);
  }
}

TEST(NucleotideSequenceTest, SubsequenceAndBounds) {
  auto s = NucleotideSequence::Dna("ACGTACGT").value();
  EXPECT_EQ(s.Subsequence(2, 4).value().ToString(), "GTAC");
  EXPECT_EQ(s.Subsequence(0, 0).value().ToString(), "");
  EXPECT_EQ(s.Subsequence(8, 0).value().ToString(), "");
  EXPECT_TRUE(s.Subsequence(7, 2).status().IsOutOfRange());
  EXPECT_TRUE(s.Subsequence(9, 0).status().IsOutOfRange());
}

TEST(NucleotideSequenceTest, ReverseComplement) {
  auto s = NucleotideSequence::Dna("ATTGCCATA").value();
  EXPECT_EQ(s.ReverseComplement().ToString(), "TATGGCAAT");
  EXPECT_EQ(s.Complement().ToString(), "TAACGGTAT");
}

TEST(NucleotideSequenceTest, ReverseComplementIsInvolutionProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    auto s = NucleotideSequence::Dna(
                 rng.RandomString(rng.Uniform(200), "ACGTRYSWKMBDHVN"))
                 .value();
    EXPECT_EQ(s.ReverseComplement().ReverseComplement(), s);
  }
}

TEST(NucleotideSequenceTest, TranscriptionAlphabetSwitch) {
  auto dna = NucleotideSequence::Dna("TACGGT").value();
  auto rna = dna.ToRna();
  ASSERT_TRUE(rna.ok());
  EXPECT_EQ(rna->alphabet(), Alphabet::kRna);
  EXPECT_EQ(rna->ToString(), "UACGGU");
  EXPECT_TRUE(rna->ToRna().status().IsFailedPrecondition());
  EXPECT_EQ(rna->ToDna().value(), dna);
  EXPECT_TRUE(dna.ToDna().status().IsFailedPrecondition());
}

TEST(NucleotideSequenceTest, GcContent) {
  EXPECT_DOUBLE_EQ(NucleotideSequence::Dna("GGCC").value().GcContent(), 1.0);
  EXPECT_DOUBLE_EQ(NucleotideSequence::Dna("AATT").value().GcContent(), 0.0);
  EXPECT_DOUBLE_EQ(NucleotideSequence::Dna("ACGT").value().GcContent(), 0.5);
  // Ambiguous positions are excluded from the denominator.
  EXPECT_DOUBLE_EQ(NucleotideSequence::Dna("GNNN").value().GcContent(), 1.0);
}

TEST(NucleotideSequenceTest, AmbiguityAccounting) {
  auto s = NucleotideSequence::Dna("ACGTNRY-").value();
  EXPECT_EQ(s.CountAmbiguous(), 4u);  // N, R, Y, and the gap.
  auto hist = s.BaseHistogram();
  EXPECT_EQ(hist[kBaseA], 1u);
  EXPECT_EQ(hist[kBaseN], 1u);
  EXPECT_EQ(hist[kBaseGap], 1u);
}

TEST(NucleotideSequenceTest, ConcatRequiresSameAlphabet) {
  auto a = NucleotideSequence::Dna("ACG").value();
  auto b = NucleotideSequence::Dna("TTT").value();
  ASSERT_TRUE(a.Concat(b).ok());
  EXPECT_EQ(a.ToString(), "ACGTTT");
  auto r = NucleotideSequence::Rna("AAA").value();
  EXPECT_TRUE(a.Concat(r).IsInvalidArgument());
}

TEST(NucleotideSequenceTest, FindExact) {
  auto s = NucleotideSequence::Dna("GGATTGCCATAGG").value();
  auto pat = NucleotideSequence::Dna("ATTGCCATA").value();
  EXPECT_EQ(s.Find(pat), 2u);
  EXPECT_EQ(s.Find(pat, 3), NucleotideSequence::npos);
  auto missing = NucleotideSequence::Dna("AAAAAA").value();
  EXPECT_EQ(s.Find(missing), NucleotideSequence::npos);
}

TEST(NucleotideSequenceTest, FindIsAmbiguityAware) {
  auto s = NucleotideSequence::Dna("ACGTACGT").value();
  // Pattern with N matches any base; R matches A or G.
  EXPECT_EQ(s.Find(NucleotideSequence::Dna("ANG").value()), 0u);
  EXPECT_EQ(s.Find(NucleotideSequence::Dna("ANC").value()),
            NucleotideSequence::npos);
  EXPECT_EQ(s.Find(NucleotideSequence::Dna("ACN").value()), 0u);
  EXPECT_EQ(s.Find(NucleotideSequence::Dna("RCG").value()), 0u);
  // A subject 'N' matches any pattern base too (set intersection).
  auto subject = NucleotideSequence::Dna("ANGT").value();
  EXPECT_EQ(subject.Find(NucleotideSequence::Dna("ACGT").value()), 0u);
}

TEST(NucleotideSequenceTest, EmptyPatternMatchesEverywhere) {
  auto s = NucleotideSequence::Dna("ACG").value();
  auto empty = NucleotideSequence::Dna("").value();
  EXPECT_EQ(s.Find(empty, 0), 0u);
  EXPECT_EQ(s.Find(empty, 3), 3u);
  EXPECT_EQ(s.Find(empty, 4), NucleotideSequence::npos);
}

TEST(NucleotideSequenceTest, SerializeDeserializeRoundTrip) {
  Rng rng(23);
  for (size_t len : {0u, 1u, 2u, 7u, 64u, 1001u}) {
    auto s = NucleotideSequence::Dna(
                 rng.RandomString(len, "ACGTRYSWKMBDHVN-"))
                 .value();
    BytesWriter w;
    s.Serialize(&w);
    BytesReader r(w.data());
    auto back = NucleotideSequence::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, s);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(NucleotideSequenceTest, DeserializeRejectsBadAlphabetTag) {
  BytesWriter w;
  w.PutU8(9);
  w.PutVarint(0);
  BytesReader r(w.data());
  EXPECT_TRUE(NucleotideSequence::Deserialize(&r).status().IsCorruption());
}

TEST(NucleotideSequenceTest, DeserializeRejectsTruncatedPayload) {
  auto s = NucleotideSequence::Dna("ACGTACGTACGT").value();
  BytesWriter w;
  s.Serialize(&w);
  auto bytes = w.data();
  bytes.resize(bytes.size() - 2);
  BytesReader r(bytes.data(), bytes.size());
  EXPECT_TRUE(NucleotideSequence::Deserialize(&r).status().IsCorruption());
}

// A parameterized sweep: serialization round-trips across lengths
// (packing edge cases) and both alphabets.
class SequenceRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, Alphabet>> {};

TEST_P(SequenceRoundTripTest, RoundTrips) {
  auto [len, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(len) * 31 + static_cast<int>(alphabet));
  auto s = NucleotideSequence::FromString(
               rng.RandomString(len, "ACGTNRYSWKM"), alphabet)
               .value();
  BytesWriter w;
  s.Serialize(&w);
  BytesReader r(w.data());
  EXPECT_EQ(NucleotideSequence::Deserialize(&r).value(), s);
  EXPECT_EQ(s.ReverseComplement().ReverseComplement(), s);
  EXPECT_EQ(s.ToString().size(), len);
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, SequenceRoundTripTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 15, 16, 17, 255, 256,
                                         1023),
                       ::testing::Values(Alphabet::kDna, Alphabet::kRna)));

// ------------------------------------------------------ ProteinSequence.

TEST(ProteinSequenceTest, FromStringRoundTrip) {
  auto p = ProteinSequence::FromString("MKV*");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 4u);
  EXPECT_EQ(p->ToString(), "MKV*");
  EXPECT_TRUE(p->HasTerminalStop());
}

TEST(ProteinSequenceTest, LowercaseCanonicalized) {
  EXPECT_EQ(ProteinSequence::FromString("mkv").value().ToString(), "MKV");
}

TEST(ProteinSequenceTest, RejectsInvalidResidue) {
  auto p = ProteinSequence::FromString("MK9");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsInvalidArgument());
}

TEST(ProteinSequenceTest, SubsequenceAndUnknowns) {
  auto p = ProteinSequence::FromString("MXKXV").value();
  EXPECT_EQ(p.CountUnknown(), 2u);
  EXPECT_EQ(p.Subsequence(1, 3).value().ToString(), "XKX");
  EXPECT_TRUE(p.Subsequence(4, 2).status().IsOutOfRange());
}

TEST(ProteinSequenceTest, MolecularWeightSanity) {
  // Glycine dipeptide: 2 * 57.05 + 18.015.
  auto p = ProteinSequence::FromString("GG").value();
  EXPECT_NEAR(p.MolecularWeightDaltons(), 132.115, 0.01);
  EXPECT_EQ(ProteinSequence().MolecularWeightDaltons(), 0.0);
}

TEST(ProteinSequenceTest, SerializeRoundTripAndCorruption) {
  auto p = ProteinSequence::FromString("MKVLLAGX*").value();
  BytesWriter w;
  p.Serialize(&w);
  BytesReader r(w.data());
  EXPECT_EQ(ProteinSequence::Deserialize(&r).value(), p);

  // A tampered residue byte is caught.
  auto bytes = w.data();
  bytes[2] = '9';
  BytesReader bad(bytes.data(), bytes.size());
  EXPECT_TRUE(ProteinSequence::Deserialize(&bad).status().IsCorruption());
}

// ----------------------------------------------------------- CodonTable.

TEST(CodonTableTest, StandardTableBasics) {
  auto t = CodonTable::ByNcbiId(1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "Standard");
  auto tr = [&](const char* codon) {
    BaseCode b[3];
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(CharToBase(codon[i], &b[i]));
    return (*t)->Translate(b[0], b[1], b[2]);
  };
  EXPECT_EQ(tr("ATG"), 'M');
  EXPECT_EQ(tr("TTT"), 'F');
  EXPECT_EQ(tr("TAA"), '*');
  EXPECT_EQ(tr("TAG"), '*');
  EXPECT_EQ(tr("TGA"), '*');
  EXPECT_EQ(tr("TGG"), 'W');
  EXPECT_EQ(tr("AAA"), 'K');
  EXPECT_EQ(tr("GGG"), 'G');
}

TEST(CodonTableTest, AmbiguousCodonResolvedWhenUnanimous) {
  auto t = *CodonTable::ByNcbiId(1);
  BaseCode g, c, n, r;
  CharToBase('G', &g);
  CharToBase('C', &c);
  CharToBase('N', &n);
  CharToBase('R', &r);
  // GCN is alanine in all four expansions.
  EXPECT_EQ(t->Translate(g, c, n), 'A');
  // RAA expands to AAA (K) and GAA (E): uncertain.
  BaseCode a;
  CharToBase('A', &a);
  EXPECT_EQ(t->Translate(r, a, a), 'X');
  // Gap in codon is unknown.
  EXPECT_EQ(t->Translate(kBaseGap, a, a), 'X');
}

TEST(CodonTableTest, MitochondrialDiffersFromStandard) {
  auto std_t = *CodonTable::ByNcbiId(1);
  auto mito = *CodonTable::ByNcbiId(2);
  BaseCode t, g, a;
  CharToBase('T', &t);
  CharToBase('G', &g);
  CharToBase('A', &a);
  // TGA: stop in standard, tryptophan in vertebrate mitochondrial.
  EXPECT_EQ(std_t->Translate(t, g, a), '*');
  EXPECT_EQ(mito->Translate(t, g, a), 'W');
  // AGA: arginine in standard, stop in vertebrate mitochondrial.
  EXPECT_EQ(std_t->Translate(a, g, a), 'R');
  EXPECT_EQ(mito->Translate(a, g, a), '*');
}

TEST(CodonTableTest, YeastMitochondrialCtnIsThreonine) {
  auto yeast = *CodonTable::ByNcbiId(3);
  BaseCode c, t, n;
  CharToBase('C', &c);
  CharToBase('T', &t);
  CharToBase('N', &n);
  EXPECT_EQ(yeast->Translate(c, t, n), 'T');
}

TEST(CodonTableTest, StartCodons) {
  auto std_t = *CodonTable::ByNcbiId(1);
  auto bact = *CodonTable::ByNcbiId(11);
  auto codon = [](const char* s) {
    BaseCode b[3];
    for (int i = 0; i < 3; ++i) CharToBase(s[i], &b[i]);
    return std::array<BaseCode, 3>{b[0], b[1], b[2]};
  };
  auto atg = codon("ATG"), gtg = codon("GTG"), aaa = codon("AAA");
  EXPECT_TRUE(std_t->IsStart(atg[0], atg[1], atg[2]));
  EXPECT_FALSE(std_t->IsStart(gtg[0], gtg[1], gtg[2]));
  EXPECT_TRUE(bact->IsStart(gtg[0], gtg[1], gtg[2]));
  EXPECT_FALSE(std_t->IsStart(aaa[0], aaa[1], aaa[2]));
}

TEST(CodonTableTest, UnknownTableIsNotFound) {
  EXPECT_TRUE(CodonTable::ByNcbiId(999).status().IsNotFound());
}

TEST(CodonTableTest, RuntimeRegistrationExtensibility) {
  // A fictional genetic code where every codon is alanine.
  Status s = CodonTable::Register(901, "AllAla", std::string(64, 'A'),
                                  {"ATG"});
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto t = CodonTable::ByNcbiId(901);
  ASSERT_TRUE(t.ok());
  BaseCode a;
  CharToBase('A', &a);
  EXPECT_EQ((*t)->Translate(a, a, a), 'A');
  // Double registration is rejected.
  EXPECT_TRUE(CodonTable::Register(901, "dup", std::string(64, 'A'), {})
                  .IsAlreadyExists());
  // Malformed tables are rejected.
  EXPECT_TRUE(CodonTable::Register(902, "short", "AA", {})
                  .IsInvalidArgument());
  EXPECT_TRUE(CodonTable::Register(903, "badstart", std::string(64, 'A'),
                                   {"AT"})
                  .IsInvalidArgument());
  EXPECT_TRUE(CodonTable::Register(904, "ambigstart", std::string(64, 'A'),
                                   {"ATN"})
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace genalg::seq
