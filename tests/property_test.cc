// Cross-module property tests: invariants that must hold for arbitrary
// (seeded-random) inputs, connecting layers that unit tests exercise in
// isolation.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "algebra/signature.h"
#include "algebra/term.h"
#include "base/rng.h"
#include "etl/integrator.h"
#include "etl/pipeline.h"
#include "etl/source.h"
#include "etl/warehouse.h"
#include "gdt/ops.h"
#include "index/suffix_array.h"
#include "seq/nucleotide_sequence.h"
#include "udb/adapter.h"
#include "udb/database.h"
#include "udb/datum.h"

namespace genalg {
namespace {

using seq::NucleotideSequence;

// --------------------------------------------------------------- Algebra.

// Decode must equal the composed algebra term for arbitrary valid genes:
// the kernel-library path and the algebra path are the same function.
class DecodeCompositionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DecodeCompositionProperty, DecodeEqualsComposedTerm) {
  Rng rng(GetParam() * 7919);
  algebra::SignatureRegistry registry;
  ASSERT_TRUE(algebra::RegisterStandardAlgebra(&registry).ok());

  size_t n_codons = 3 + rng.Uniform(30);
  std::string coding = "ATG";
  for (size_t i = 0; i < n_codons; ++i) {
    coding += 'C';
    coding += rng.Pick("ACGT");
    coding += rng.Pick("ACGT");
  }
  coding += "TAA";
  size_t split = 3 * (1 + rng.Uniform(n_codons));
  std::string intron = "GT" + rng.RandomDna(6 + rng.Uniform(12)) + "AG";
  gdt::Gene gene;
  gene.id = "P" + std::to_string(GetParam());
  gene.sequence = NucleotideSequence::Dna(coding.substr(0, split) + intron +
                                          coding.substr(split))
                      .value();
  gene.exons = {{0, split}, {split + intron.size(), gene.sequence.size()}};

  auto direct = gdt::Decode(gene);
  ASSERT_TRUE(direct.ok());

  algebra::Term term = algebra::Term::Apply(
      "translate",
      algebra::Term::Apply(
          "splice", algebra::Term::Apply(
                        "transcribe",
                        algebra::Term::Constant(
                            algebra::Value::GeneVal(gene)))));
  auto via_term = term.Evaluate(registry);
  ASSERT_TRUE(via_term.ok());
  EXPECT_EQ(via_term->AsProtein()->sequence, direct->sequence);
  EXPECT_DOUBLE_EQ(via_term->AsProtein()->confidence, direct->confidence);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeCompositionProperty,
                         ::testing::Range(1, 13));

// Every ORF reported by FindOrfs must be re-derivable from TranslateFrame
// of its frame: the two views of the same reading frame agree.
TEST(OrfFrameProperty, FindOrfsAgreesWithTranslateFrame) {
  Rng rng(7001);
  for (int trial = 0; trial < 10; ++trial) {
    auto dna = NucleotideSequence::Dna(rng.RandomDna(600)).value();
    auto orfs = gdt::FindOrfs(dna, 5);
    ASSERT_TRUE(orfs.ok());
    for (const gdt::Orf& orf : *orfs) {
      auto frame_protein = gdt::TranslateFrame(dna, orf.frame);
      ASSERT_TRUE(frame_protein.ok());
      // The ORF's residues appear verbatim in the frame translation at
      // codon offset (begin - frame_offset) / 3.
      size_t frame_offset = static_cast<size_t>(std::abs(orf.frame)) - 1;
      size_t codon_index = (orf.begin - frame_offset) / 3;
      std::string frame_text = frame_protein->ToString();
      std::string orf_text = orf.protein.ToString();
      ASSERT_LE(codon_index + orf_text.size(), frame_text.size());
      EXPECT_EQ(frame_text.substr(codon_index, orf_text.size()), orf_text)
          << "frame " << orf.frame << " begin " << orf.begin;
      // And the codon right after the ORF body is its stop.
      EXPECT_EQ(frame_text[codon_index + orf_text.size()], '*');
    }
  }
}

// ----------------------------------------------------------------- Index.

TEST(SuffixArrayProperty, CountsArePositionCounts) {
  Rng rng(7103);
  std::string text = rng.RandomString(2000, "ACGT");
  auto sa = index::SuffixArray::Build(text);
  for (int trial = 0; trial < 30; ++trial) {
    std::string pattern = rng.RandomDna(1 + rng.Uniform(5));
    EXPECT_EQ(sa.CountOccurrences(pattern), sa.FindAll(pattern).size());
  }
  // Single-character counts sum to the text length.
  size_t total = 0;
  for (char c : std::string("ACGT")) {
    total += sa.CountOccurrences(std::string(1, c));
  }
  EXPECT_EQ(total, text.size());
}

// ----------------------------------------------------------------- Datum.

TEST(DatumProperty, OrderKeyAgreesWithCompare) {
  Rng rng(7207);
  auto random_datum = [&]() -> udb::Datum {
    switch (rng.Uniform(4)) {
      case 0:
        return udb::Datum::Int(static_cast<int64_t>(rng.Next()));
      case 1:
        return udb::Datum::Real((rng.NextDouble() - 0.5) * 1e6);
      case 2:
        return udb::Datum::String(rng.RandomDna(rng.Uniform(12)));
      default:
        return udb::Datum::Bool(rng.Bernoulli(0.5));
    }
  };
  for (int trial = 0; trial < 500; ++trial) {
    udb::Datum a = random_datum();
    udb::Datum b = random_datum();
    if (a.kind() != b.kind()) continue;  // Keys only order within a kind.
    auto compared = a.Compare(b);
    ASSERT_TRUE(compared.ok());
    int key_order = a.OrderKey() < b.OrderKey()   ? -1
                    : b.OrderKey() < a.OrderKey() ? 1
                                                  : 0;
    EXPECT_EQ(key_order, *compared)
        << a.ToString() << " vs " << b.ToString();
  }
}

// ------------------------------------------------------------ Integrator.

TEST(IntegratorProperty, ReconcileIsIdempotentOnItsOwnOutput) {
  Rng rng(7309);
  for (int trial = 0; trial < 8; ++trial) {
    // Random batch with duplicates and conflicts.
    std::vector<formats::SequenceRecord> batch;
    size_t n = 3 + rng.Uniform(8);
    for (size_t i = 0; i < n; ++i) {
      formats::SequenceRecord r;
      r.accession = "IDP" + std::to_string(rng.Uniform(5));
      r.source_db = "S" + std::to_string(rng.Uniform(3));
      r.sequence =
          NucleotideSequence::Dna(rng.RandomDna(60 + rng.Uniform(60)))
              .value();
      batch.push_back(std::move(r));
    }
    etl::Integrator integrator;
    auto first = integrator.Reconcile(batch);
    ASSERT_TRUE(first.ok());
    // Feed the canonical records back in: entity set must be stable.
    std::vector<formats::SequenceRecord> canon;
    for (const auto& entry : *first) canon.push_back(entry.canonical);
    auto second = integrator.Reconcile(canon);
    ASSERT_TRUE(second.ok());
    ASSERT_EQ(second->size(), first->size());
    for (size_t i = 0; i < first->size(); ++i) {
      EXPECT_EQ((*second)[i].canonical.accession,
                (*first)[i].canonical.accession);
      EXPECT_EQ((*second)[i].canonical.sequence,
                (*first)[i].canonical.sequence);
    }
  }
}

// ------------------------------------------------------------- Warehouse.

class WarehouseInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(WarehouseInvariantTest, ReferentialIntegrityUnderChurn) {
  algebra::SignatureRegistry registry;
  ASSERT_TRUE(algebra::RegisterStandardAlgebra(&registry).ok());
  udb::Adapter adapter(&registry);
  ASSERT_TRUE(udb::RegisterStandardUdts(&adapter).ok());
  udb::Database db(&adapter);
  etl::Warehouse warehouse(&db);
  ASSERT_TRUE(warehouse.InitSchema().ok());

  etl::SyntheticSource source("CHU", etl::SourceRepresentation::kFlatFile,
                              etl::SourceCapability::kLogged,
                              static_cast<uint64_t>(GetParam()) * 31 + 5);
  ASSERT_TRUE(source.Populate(8, 150).ok());
  etl::EtlPipeline pipeline(&warehouse);
  ASSERT_TRUE(pipeline.AddSource(&source).ok());
  ASSERT_TRUE(pipeline.InitialLoad().ok());

  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(source.EvolveStep(rng.NextDouble() * 0.5, 1.0).ok());
    ASSERT_TRUE(pipeline.RunOnce().ok());

    // Invariant 1: every feature row references a live sequence row.
    auto seq_rows = db.Execute("SELECT accession FROM sequences");
    auto feature_rows = db.Execute("SELECT accession FROM features");
    ASSERT_TRUE(seq_rows.ok() && feature_rows.ok());
    std::set<std::string> live;
    for (const auto& row : seq_rows->rows) {
      live.insert(*row[0].AsString());
    }
    for (const auto& row : feature_rows->rows) {
      EXPECT_TRUE(live.count(*row[0].AsString()))
          << "orphaned feature row in round " << round;
    }
    // Invariant 2: accessions are unique.
    EXPECT_EQ(live.size(), seq_rows->rows.size());
    // Invariant 3: warehouse count matches the live source exactly.
    EXPECT_EQ(live.size(), source.record_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarehouseInvariantTest,
                         ::testing::Range(1, 7));

// ------------------------------------------------------------------ SQL.

TEST(SqlProperty, RepeatedQueriesAreDeterministic) {
  algebra::SignatureRegistry registry;
  ASSERT_TRUE(algebra::RegisterStandardAlgebra(&registry).ok());
  udb::Adapter adapter(&registry);
  ASSERT_TRUE(udb::RegisterStandardUdts(&adapter).ok());
  udb::Database db(&adapter);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b TEXT, s NUCSEQ)").ok());
  Rng rng(7411);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" +
                           std::to_string(rng.Uniform(10)) + ", '" +
                           rng.RandomDna(4) + "', parse_dna('" +
                           rng.RandomDna(40) + "'))")
                    .ok());
  }
  const char* queries[] = {
      "SELECT a, count(*) FROM t GROUP BY a ORDER BY a",
      "SELECT b FROM t WHERE gc_content(s) > 0.4 ORDER BY b, a",
      "SELECT DISTINCT a FROM t ORDER BY a DESC",
      "SELECT x.a FROM t x JOIN t y ON x.b = y.b WHERE x.a < 3 "
      "ORDER BY x.a LIMIT 20",
  };
  for (const char* query : queries) {
    auto first = db.Execute(query);
    ASSERT_TRUE(first.ok()) << query;
    for (int repeat = 0; repeat < 3; ++repeat) {
      auto again = db.Execute(query);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->rows, first->rows) << query;
    }
  }
}

// Indexed and unindexed databases must answer identically under random
// insert/update/delete churn — the index maintenance oracle.
TEST(SqlProperty, IndexedAndUnindexedAgreeUnderChurn) {
  algebra::SignatureRegistry registry;
  ASSERT_TRUE(algebra::RegisterStandardAlgebra(&registry).ok());
  udb::Adapter adapter(&registry);
  ASSERT_TRUE(udb::RegisterStandardUdts(&adapter).ok());
  udb::Database indexed(&adapter);
  udb::Database plain(&adapter);
  for (udb::Database* db : {&indexed, &plain}) {
    ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT, s NUCSEQ)").ok());
  }
  ASSERT_TRUE(indexed.CreateBTreeIndex("t", "a").ok());
  ASSERT_TRUE(indexed.CreateKmerIndex("t", "s").ok());

  Rng rng(7603);
  for (int step = 0; step < 120; ++step) {
    std::string statement;
    switch (rng.Uniform(4)) {
      case 0:
      case 1:
        statement = "INSERT INTO t VALUES (" +
                    std::to_string(rng.Uniform(15)) + ", parse_dna('" +
                    rng.RandomDna(30 + rng.Uniform(30)) + "'))";
        break;
      case 2:
        statement = "DELETE FROM t WHERE a = " +
                    std::to_string(rng.Uniform(15));
        break;
      default:
        statement = "UPDATE t SET a = " + std::to_string(rng.Uniform(15)) +
                    " WHERE a = " + std::to_string(rng.Uniform(15));
        break;
    }
    auto r1 = indexed.Execute(statement);
    auto r2 = plain.Execute(statement);
    ASSERT_EQ(r1.ok(), r2.ok()) << statement;

    if (step % 10 == 9) {
      // Probe through the index paths and compare.
      std::string probe_eq = "SELECT count(*) FROM t WHERE a = " +
                             std::to_string(rng.Uniform(15));
      std::string probe_contains =
          "SELECT count(*) FROM t WHERE contains(s, parse_dna('" +
          rng.RandomDna(10) + "'))";
      for (const std::string& probe : {probe_eq, probe_contains}) {
        auto with_index = indexed.Execute(probe);
        auto without = plain.Execute(probe);
        ASSERT_TRUE(with_index.ok() && without.ok()) << probe;
        EXPECT_EQ(with_index->rows, without->rows)
            << probe << " at step " << step;
      }
    }
  }
}

// Aggregates must agree with hand-computed values over random data.
TEST(SqlProperty, AggregatesMatchOracle) {
  algebra::SignatureRegistry registry;
  ASSERT_TRUE(algebra::RegisterStandardAlgebra(&registry).ok());
  udb::Adapter adapter(&registry);
  ASSERT_TRUE(udb::RegisterStandardUdts(&adapter).ok());
  udb::Database db(&adapter);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (g INT, v INT)").ok());
  Rng rng(7507);
  std::map<int64_t, std::pair<int64_t, int64_t>> oracle;  // g -> (n, sum).
  for (int i = 0; i < 100; ++i) {
    int64_t g = static_cast<int64_t>(rng.Uniform(6));
    int64_t v = rng.UniformInt(-50, 50);
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(g) +
                           ", " + std::to_string(v) + ")")
                    .ok());
    oracle[g].first += 1;
    oracle[g].second += v;
  }
  auto r = db.Execute(
      "SELECT g, count(*), sum(v) FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), oracle.size());
  size_t i = 0;
  for (const auto& [g, stats] : oracle) {
    EXPECT_EQ(*r->rows[i][0].AsInt(), g);
    EXPECT_EQ(*r->rows[i][1].AsInt(), stats.first);
    EXPECT_EQ(*r->rows[i][2].AsInt(), stats.second);
    ++i;
  }
}

}  // namespace
}  // namespace genalg
