#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algebra/signature.h"
#include "etl/pipeline.h"
#include "etl/source.h"
#include "etl/warehouse.h"
#include "obs/metrics.h"
#include "udb/adapter.h"
#include "udb/database.h"
#include "udb/fault_disk.h"

namespace genalg::etl {
namespace {

using udb::Database;
using udb::FaultDiskManager;
using udb::FaultWalFile;
using udb::SimulatedMedia;

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()

// The warehouse refresh cycle under a dying disk: a failed cycle must
// leave the previously loaded consistent snapshot, recovery must serve
// it, and a later refresh must converge to the source's new state.
class EtlCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(algebra::RegisterStandardAlgebra(&algebra_).ok());
    adapter_ = std::make_unique<udb::Adapter>(&algebra_);
    ASSERT_TRUE(udb::RegisterStandardUdts(adapter_.get()).ok());
  }

  std::unique_ptr<Database> OpenFresh(SimulatedMedia* media) {
    auto db = std::make_unique<Database>(
        adapter_.get(), std::make_unique<FaultDiskManager>(media), 128);
    Status enabled = db->EnableWal(std::make_unique<FaultWalFile>(media));
    EXPECT_TRUE(enabled.ok()) << enabled.ToString();
    return db;
  }

  Result<std::unique_ptr<Database>> Reopen(SimulatedMedia* media) {
    return Database::Recover(adapter_.get(),
                             std::make_unique<FaultDiskManager>(media),
                             std::make_unique<FaultWalFile>(media), 128);
  }

  // A deterministic source: same seed + same call sequence == same
  // content, which lets a fault-free twin supply the expected state.
  static std::unique_ptr<SyntheticSource> MakeSource() {
    auto source = std::make_unique<SyntheticSource>(
        "genbank", SourceRepresentation::kFlatFile,
        SourceCapability::kLogged, /*seed=*/1234);
    Status populated = source->Populate(6, 160, /*noise_rate=*/0.0);
    EXPECT_TRUE(populated.ok()) << populated.ToString();
    return source;
  }

  static std::string MustExport(Warehouse* warehouse) {
    auto xml = warehouse->ExportGenAlgXml();
    EXPECT_TRUE(xml.ok()) << xml.status().ToString();
    return xml.ok() ? *xml : std::string();
  }

  algebra::SignatureRegistry algebra_;
  std::unique_ptr<udb::Adapter> adapter_;
};

TEST_F(EtlCrashTest, KilledRefreshServesPreviousSnapshotThenConverges) {
  // Fault-free twin: the state the warehouse should converge to.
  auto twin_source = MakeSource();
  Database twin_db(adapter_.get());
  Warehouse twin(&twin_db);
  EtlPipeline twin_pipeline(&twin);
  ASSERT_OK(twin.InitSchema());
  ASSERT_OK(twin_pipeline.AddSource(twin_source.get()));
  ASSERT_OK(twin_pipeline.InitialLoad());
  ASSERT_OK(twin_source->EvolveStep(/*p_update=*/0.8, /*p_churn=*/0.0));
  ASSERT_OK(twin_pipeline.RunOnce().status());
  std::string converged_xml = MustExport(&twin);

  // The run under test, on fault-injecting media.
  auto source = MakeSource();
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  Warehouse warehouse(db.get());
  EtlPipeline pipeline(&warehouse);
  ASSERT_OK(warehouse.InitSchema());
  ASSERT_OK(pipeline.AddSource(source.get()));
  ASSERT_OK(pipeline.InitialLoad());
  std::string loaded_xml = MustExport(&warehouse);
  auto count = warehouse.SequenceCount();
  ASSERT_OK(count.status());
  EXPECT_EQ(*count, 6);

  // The source moves on; the disk dies three writes into the refresh.
  ASSERT_OK(source->EvolveStep(/*p_update=*/0.8, /*p_churn=*/0.0));
  media.ArmFault(SimulatedMedia::FaultMode::kKill, 3);
  EXPECT_FALSE(pipeline.RunOnce().ok());

  // Power-cycle and recover: the previous consistent snapshot is served —
  // not a half-applied refresh.
  db.reset();
  media.Crash();
  auto recovered = Reopen(&media);
  ASSERT_OK(recovered.status());
  Warehouse warehouse2(recovered->get());
  auto count2 = warehouse2.SequenceCount();
  ASSERT_OK(count2.status());
  EXPECT_EQ(*count2, *count);
  EXPECT_EQ(MustExport(&warehouse2), loaded_xml);

  // Re-running the refresh from a fresh extract converges on the
  // source's current state.
  EtlPipeline pipeline2(&warehouse2);
  ASSERT_OK(pipeline2.AddSource(source.get()));
  ASSERT_OK(pipeline2.FullReload());
  EXPECT_EQ(MustExport(&warehouse2), converged_xml);
}

TEST_F(EtlCrashTest, TransientCommitFailureRetriesWithoutRestart) {
  auto twin_source = MakeSource();
  Database twin_db(adapter_.get());
  Warehouse twin(&twin_db);
  EtlPipeline twin_pipeline(&twin);
  ASSERT_OK(twin.InitSchema());
  ASSERT_OK(twin_pipeline.AddSource(twin_source.get()));
  ASSERT_OK(twin_pipeline.InitialLoad());
  ASSERT_OK(twin_source->EvolveStep(/*p_update=*/1.0, /*p_churn=*/0.0));
  ASSERT_OK(twin_pipeline.RunOnce().status());
  std::string converged_xml = MustExport(&twin);

  auto source = MakeSource();
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  Warehouse warehouse(db.get());
  EtlPipeline pipeline(&warehouse);
  ASSERT_OK(warehouse.InitSchema());
  ASSERT_OK(pipeline.AddSource(source.get()));
  ASSERT_OK(pipeline.InitialLoad());
  std::string loaded_xml = MustExport(&warehouse);

  ASSERT_OK(source->EvolveStep(/*p_update=*/1.0, /*p_churn=*/0.0));

  // One fsync fails mid-cycle; the device survives. The round rolls back
  // (database AND staging image) and its deltas stay buffered.
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  media.ArmFault(SimulatedMedia::FaultMode::kFsyncFailOnce, 0);
  EXPECT_FALSE(pipeline.RunOnce().ok());
  EXPECT_EQ(MustExport(&warehouse), loaded_xml);

  // Same pipeline, same process: the retry applies the buffered deltas.
  auto retried = pipeline.RunOnce();
  ASSERT_OK(retried.status());
  EXPECT_GT(retried->deltas_applied, 0u);
  EXPECT_EQ(MustExport(&warehouse), converged_xml);

  // The metrics tell the same story: the failed round recorded exactly
  // one commit failure, and exactly one retry round re-queued exactly the
  // deltas that were eventually applied.
  obs::MetricsSnapshot delta = obs::Registry::Global().Snapshot().Since(before);
  EXPECT_EQ(delta.counter("etl.commit_failures"), 1u);
  EXPECT_EQ(delta.counter("etl.retry_rounds"), 1u);
  EXPECT_EQ(delta.counter("etl.deltas_retried"), retried->deltas_applied);
  EXPECT_EQ(delta.counter("etl.deltas_applied"), retried->deltas_applied);
}

}  // namespace
}  // namespace genalg::etl
