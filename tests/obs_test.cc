#include "obs/metrics.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Global allocation counter for the disabled-span no-allocation test.
// Overriding the global operators affects the whole binary, which is fine:
// the test only compares counts across a tight window.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// GCC pairs the replaced operator new with the compiler's builtin model
// and flags the free() below as mismatched; with both operators replaced
// malloc/free is the matched pair.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace genalg::obs {
namespace {

TEST(MetricsTest, CounterGaugeBasics) {
  Registry& registry = Registry::Global();
  Counter* counter = registry.GetCounter("test.basics.counter");
  Gauge* gauge = registry.GetGauge("test.basics.gauge");
  uint64_t before = counter->value();
  counter->Increment();
  counter->Add(9);
  EXPECT_EQ(counter->value(), before + 10);
  // Same name, same metric.
  EXPECT_EQ(registry.GetCounter("test.basics.counter"), counter);

  gauge->Set(42);
  EXPECT_EQ(gauge->value(), 42);
  gauge->Add(8);
  gauge->Sub(20);
  EXPECT_EQ(gauge->value(), 30);
}

TEST(MetricsTest, HistogramBucketsCountSumMax) {
  Histogram histogram({10, 100, 1000});
  histogram.Record(0);     // <= 10.
  histogram.Record(10);    // <= 10 (bounds are inclusive upper limits).
  histogram.Record(11);    // <= 100.
  histogram.Record(500);   // <= 1000.
  histogram.Record(5000);  // Overflow.
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 0u + 10 + 11 + 500 + 5000);
  EXPECT_EQ(histogram.max(), 5000u);
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  // Quantiles are estimates but must be ordered and within range.
  uint64_t p50 = histogram.EstimateQuantile(0.5);
  uint64_t p99 = histogram.EstimateQuantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p99, 500u);
}

TEST(MetricsTest, SnapshotSinceScopesReadings) {
  Registry& registry = Registry::Global();
  Counter* counter = registry.GetCounter("test.since.counter");
  Histogram* histogram = registry.GetHistogram("test.since.hist_us");
  counter->Add(5);
  histogram->Record(3);
  MetricsSnapshot before = registry.Snapshot();
  counter->Add(7);
  histogram->Record(42);
  histogram->Record(42);
  MetricsSnapshot delta = registry.Snapshot().Since(before);
  EXPECT_EQ(delta.counter("test.since.counter"), 7u);
  EXPECT_EQ(delta.counter("test.since.never_registered"), 0u);
  const HistogramData& h = delta.histograms.at("test.since.hist_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 84u);
}

TEST(MetricsTest, DisableSwitchesMutatorsOff) {
  Registry& registry = Registry::Global();
  Counter* counter = registry.GetCounter("test.disable.counter");
  Gauge* gauge = registry.GetGauge("test.disable.gauge");
  Histogram* histogram = registry.GetHistogram("test.disable.hist_us");
  gauge->Set(1);
  uint64_t counted = counter->value();
  uint64_t recorded = histogram->count();

  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  counter->Add(100);
  gauge->Set(99);
  histogram->Record(7);
  SetMetricsEnabled(true);

  EXPECT_EQ(counter->value(), counted);
  EXPECT_EQ(gauge->value(), 1);
  EXPECT_EQ(histogram->count(), recorded);
  counter->Increment();
  EXPECT_EQ(counter->value(), counted + 1);
}

TEST(MetricsTest, ConcurrentWritersProduceExactTotals) {
  Registry& registry = Registry::Global();
  MetricsSnapshot before = registry.Snapshot();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      // Registration from every thread exercises the registry lock; the
      // returned pointer must be the same object for the same name.
      Counter* counter =
          Registry::Global().GetCounter("test.concurrent.counter");
      Gauge* gauge = Registry::Global().GetGauge("test.concurrent.gauge");
      Histogram* histogram =
          Registry::Global().GetHistogram("test.concurrent.hist_us");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1);
        gauge->Sub(1);
        histogram->Record(i % 97);
      }
      (void)t;
    });
  }
  for (std::thread& w : writers) w.join();
  MetricsSnapshot delta = registry.Snapshot().Since(before);
  EXPECT_EQ(delta.counter("test.concurrent.counter"), kThreads * kPerThread);
  EXPECT_EQ(delta.gauge("test.concurrent.gauge"), 0);
  const HistogramData& h = delta.histograms.at("test.concurrent.hist_us");
  EXPECT_EQ(h.count, kThreads * kPerThread);
  uint64_t per_thread_sum = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) per_thread_sum += i % 97;
  EXPECT_EQ(h.sum, kThreads * per_thread_sum);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(MetricsTest, JsonAndTextExportContainRecordedValues) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.export.counter")->Add(123);
  registry.GetGauge("test.export.gauge")->Set(-5);
  registry.GetHistogram("test.export.hist_us")->Record(17);
  MetricsSnapshot snapshot = registry.Snapshot();

  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test.export.counter\""), std::string::npos);
  EXPECT_NE(json.find("123"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.gauge\""), std::string::npos);
  EXPECT_NE(json.find("-5"), std::string::npos);
  EXPECT_NE(json.find("\"test.export.hist_us\""), std::string::npos);
  // Structural sanity: braces balance (export is machine-readable).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  std::string text = snapshot.ToText();
  EXPECT_NE(text.find("test.export.counter"), std::string::npos);
  EXPECT_NE(text.find("test.export.gauge"), std::string::npos);
}

TEST(TraceTest, CollectorCapturesNestedSpansWithAttributes) {
  SpanCollector collector;
  {
    Span root("query");
    root.SetAttr("sql", "SELECT 1");
    {
      Span scan("scan");
      scan.SetAttr("rows", uint64_t{42});
      { Span filter("filter"); }
    }
    { Span sort("sort"); }
  }
  ASSERT_EQ(collector.roots().size(), 1u);
  const SpanNode& root = *collector.roots()[0];
  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.attr("sql"), "SELECT 1");
  EXPECT_EQ(root.attr("missing"), "");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "scan");
  EXPECT_EQ(root.children[0]->attr("rows"), "42");
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  EXPECT_EQ(root.children[0]->children[0]->name, "filter");
  EXPECT_EQ(root.children[1]->name, "sort");
  EXPECT_EQ(root.CountNamed("scan"), 1u);
  EXPECT_EQ(root.CountNamed("query"), 1u);
  // Children finished before the root, so their time is accounted inside.
  EXPECT_GT(root.duration_ns, 0u);
  EXPECT_LE(root.ChildDurationNs(), root.duration_ns);
}

TEST(TraceTest, CollectorMasksEnclosingSpan) {
  SpanCollector outer_collector;
  Span outer("outer");
  {
    SpanCollector inner_collector;
    { Span inner("inner"); }
    // "inner" is a fresh root under the inner collector, not a child of
    // "outer".
    ASSERT_EQ(inner_collector.roots().size(), 1u);
    EXPECT_EQ(inner_collector.roots()[0]->name, "inner");
  }
  { Span child("child"); }
  EXPECT_TRUE(outer.enabled());
  // After the inner collector unwinds, nesting under "outer" resumes.
  // (Verified through the tree once "outer" closes — see below.)
  (void)outer;
}

TEST(TraceTest, SpanToTextAndJsonRenderTree) {
  SpanCollector collector;
  {
    Span root("refresh");
    root.SetAttr("rows", uint64_t{7});
    { Span child("poll"); }
  }
  ASSERT_EQ(collector.roots().size(), 1u);
  const SpanNode& root = *collector.roots()[0];
  std::string text = root.ToText();
  EXPECT_NE(text.find("refresh"), std::string::npos);
  EXPECT_NE(text.find("poll"), std::string::npos);
  EXPECT_NE(text.find("rows=7"), std::string::npos);
  std::string json = root.ToJson();
  EXPECT_NE(json.find("\"refresh\""), std::string::npos);
  EXPECT_NE(json.find("\"poll\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST(TraceTest, TracerRetainsAndFlushesRoots) {
  Tracer& tracer = Tracer::Global();
  tracer.Flush(/*write_out=*/false);  // Drop anything from earlier tests.
  tracer.Enable(Tracer::Format::kText);
  {
    Span root("traced");
    root.SetAttr("k", "v");
  }
  EXPECT_GE(tracer.retained(), 1u);
  std::string rendered = tracer.Flush(/*write_out=*/false);
  EXPECT_NE(rendered.find("traced"), std::string::npos);
  EXPECT_EQ(tracer.retained(), 0u);
  tracer.Disable();
  { Span ignored("ignored"); }
  EXPECT_EQ(tracer.retained(), 0u);
}

TEST(TraceTest, DisabledSpansAreIncrementOnlyAndDoNotAllocate) {
  // Preconditions: no collector on this thread, tracer off.
  Tracer::Global().Disable();
  { Span warmup("warmup"); }  // Touch thread_locals outside the window.

  constexpr uint64_t kSpans = 10000;
  uint64_t disabled_before =
      internal::g_disabled_spans.load(std::memory_order_relaxed);
  uint64_t allocations_before = g_allocations.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < kSpans; ++i) {
    Span span("hot.path.span");
    span.SetAttr("rows", i);
    span.SetAttr("name", "value");
  }
  uint64_t allocations_after = g_allocations.load(std::memory_order_relaxed);
  uint64_t disabled_after =
      internal::g_disabled_spans.load(std::memory_order_relaxed);

  EXPECT_EQ(allocations_after, allocations_before);
  EXPECT_EQ(disabled_after, disabled_before + kSpans);
}

TEST(TraceTest, DisabledSpanReportsDisabled) {
  Tracer::Global().Disable();
  Span span("off");
  EXPECT_FALSE(span.enabled());
}

}  // namespace
}  // namespace genalg::obs
