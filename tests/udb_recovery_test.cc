#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/signature.h"
#include "udb/adapter.h"
#include "udb/database.h"
#include "udb/fault_disk.h"
#include "udb/storage.h"
#include "udb/wal.h"

namespace genalg::udb {
namespace {

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(algebra::RegisterStandardAlgebra(&algebra_).ok());
    adapter_ = std::make_unique<Adapter>(&algebra_);
    ASSERT_TRUE(RegisterStandardUdts(adapter_.get()).ok());
  }

  // A fresh WAL-enabled database over `media`.
  std::unique_ptr<Database> OpenFresh(SimulatedMedia* media) {
    auto db = std::make_unique<Database>(
        adapter_.get(), std::make_unique<FaultDiskManager>(media), 64);
    Status enabled = db->EnableWal(std::make_unique<FaultWalFile>(media));
    EXPECT_OK(enabled);
    return db;
  }

  Result<std::unique_ptr<Database>> Reopen(SimulatedMedia* media) {
    return Database::Recover(adapter_.get(),
                             std::make_unique<FaultDiskManager>(media),
                             std::make_unique<FaultWalFile>(media), 64);
  }

  algebra::SignatureRegistry algebra_;
  std::unique_ptr<Adapter> adapter_;
};

// --------------------------------------------------- Deterministic workload.
//
// Four transactions mixing DDL, inserts, index creation, and deletes. The
// crash matrix replays this same workload under every fault and checks
// that recovery lands exactly on the last committed prefix.

constexpr int kSteps = 4;

Status RunStep(Database* db, int step) {
  auto insert = [db](int64_t id, const std::string& name) {
    return db->InsertRow("specimens",
                         {Datum::Int(id), Datum::String(name)});
  };
  switch (step) {
    case 0:
      GENALG_RETURN_IF_ERROR(db->CreateTable(
          "specimens",
          {{"id", ColumnType::Int()}, {"name", ColumnType::String()}},
          Space::kUser));
      GENALG_RETURN_IF_ERROR(insert(1, "adh"));
      return insert(2, "cyc");
    case 1:
      GENALG_RETURN_IF_ERROR(insert(3, "gap"));
      GENALG_RETURN_IF_ERROR(insert(4, "his"));
      return insert(5, "rbc");
    case 2:
      GENALG_RETURN_IF_ERROR(db->CreateBTreeIndex("specimens", "id"));
      GENALG_RETURN_IF_ERROR(insert(6, "tub"));
      return insert(7, "ubi");
    case 3:
      GENALG_RETURN_IF_ERROR(
          db->Execute("DELETE FROM specimens WHERE id = 3").status());
      return insert(8, "act");
    default:
      return Status::InvalidArgument("no such step");
  }
}

// One workload transaction: explicit Begin/Commit with rollback on error.
Status RunTxn(Database* db, int step) {
  GENALG_RETURN_IF_ERROR(db->Begin());
  Status s = RunStep(db, step);
  if (s.ok()) return db->Commit();
  if (db->in_transaction()) (void)db->Abort();
  return s;
}

// The ids visible after each committed prefix (sorted).
const std::vector<std::vector<int64_t>> kExpectedIds = {
    {},
    {1, 2},
    {1, 2, 3, 4, 5},
    {1, 2, 3, 4, 5, 6, 7},
    {1, 2, 4, 5, 6, 7, 8},
};

std::vector<int64_t> SpecimenIds(Database* db) {
  auto rows = db->ScanTable("specimens");
  if (!rows.ok()) return {};
  std::vector<int64_t> ids;
  for (const Row& row : *rows) {
    auto id = row[0].AsInt();
    if (id.ok()) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::vector<uint8_t>> DurablePages(const SimulatedMedia& media) {
  std::vector<std::vector<uint8_t>> pages;
  for (size_t i = 0; i < media.durable_page_count(); ++i) {
    pages.push_back(media.DurablePage(static_cast<PageId>(i)));
  }
  return pages;
}

// ------------------------------------------------------------- WAL basics.

TEST(Crc32Test, MatchesKnownVector) {
  const char* msg = "123456789";
  EXPECT_EQ(Crc32(msg, 9), 0xCBF43926u);
}

TEST(WalScanTest, StopsAtTornTail) {
  SimulatedMedia media;
  FaultWalFile file(&media);
  WriteAheadLog wal(
      std::make_unique<FaultWalFile>(&media));
  ASSERT_OK(wal.AppendBegin(1));
  std::vector<uint8_t> page(kPageSize, 0xAB);
  ASSERT_OK(wal.AppendPageImage(1, 0, page.data()));
  ASSERT_OK(wal.AppendCommit(1, {}));
  // Garbage tail: half a frame header.
  uint8_t junk[6] = {0xFF, 0xFF, 0xFF, 0x7F, 0x00, 0x01};
  ASSERT_OK(file.Append(junk, sizeof(junk)));
  ASSERT_OK(file.Sync());

  auto bytes = file.ReadAll();
  ASSERT_OK(bytes.status());
  bool torn = false;
  std::vector<WalRecord> records = WriteAheadLog::Scan(*bytes, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, WalRecord::Type::kBegin);
  EXPECT_EQ(records[1].type, WalRecord::Type::kPageImage);
  EXPECT_EQ(records[1].payload, page);
  EXPECT_EQ(records[2].type, WalRecord::Type::kCommit);
}

TEST(WalScanTest, RejectsCorruptedPayload) {
  SimulatedMedia media;
  WriteAheadLog wal(std::make_unique<FaultWalFile>(&media));
  ASSERT_OK(wal.AppendBegin(7));
  ASSERT_OK(wal.AppendCommit(7, {}));
  ASSERT_OK(wal.SyncNow());
  std::vector<uint8_t> bytes = media.durable_wal();
  bytes[9] ^= 0x01;  // Flip a bit inside the first payload.
  bool torn = false;
  std::vector<WalRecord> records = WriteAheadLog::Scan(bytes, &torn);
  EXPECT_TRUE(torn);
  EXPECT_TRUE(records.empty());
}

TEST_F(RecoveryTest, CommittedTransactionsSurviveCrash) {
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  for (int step = 0; step < kSteps; ++step) {
    ASSERT_OK(RunTxn(db.get(), step));
  }
  db.reset();
  media.Crash();

  auto recovered = Reopen(&media);
  ASSERT_OK(recovered.status());
  EXPECT_EQ(SpecimenIds(recovered->get()), kExpectedIds[kSteps]);
  // The rebuilt catalog carries the index definition.
  auto explain =
      (*recovered)->Explain("SELECT name FROM specimens WHERE id = 4");
  ASSERT_OK(explain.status());
  EXPECT_NE(explain->find("btree"), std::string::npos) << *explain;
}

TEST_F(RecoveryTest, UncommittedTransactionIsInvisibleAfterCrash) {
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  ASSERT_OK(RunTxn(db.get(), 0));
  // Open a transaction and die before commit.
  ASSERT_OK(db->Begin());
  ASSERT_OK(db->InsertRow("specimens",
                          {Datum::Int(99), Datum::String("ghost")}));
  db.reset();
  media.Crash();

  auto recovered = Reopen(&media);
  ASSERT_OK(recovered.status());
  EXPECT_EQ(SpecimenIds(recovered->get()), kExpectedIds[1]);
}

TEST_F(RecoveryTest, AbortRollsBackRowsAndCatalog) {
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  ASSERT_OK(RunTxn(db.get(), 0));

  ASSERT_OK(db->Begin());
  ASSERT_OK(db->InsertRow("specimens",
                          {Datum::Int(50), Datum::String("tmp")}));
  ASSERT_OK(db->CreateTable("scratch", {{"x", ColumnType::Int()}},
                            Space::kUser));
  ASSERT_OK(db->CreateBTreeIndex("specimens", "id"));
  ASSERT_OK(db->Abort());

  EXPECT_EQ(SpecimenIds(db.get()), kExpectedIds[1]);
  EXPECT_FALSE(db->GetSchema("scratch").ok());
  auto explain = db->Explain("SELECT name FROM specimens WHERE id = 1");
  ASSERT_OK(explain.status());
  EXPECT_EQ(explain->find("btree"), std::string::npos) << *explain;
  // The aborted transaction leaves the database fully usable.
  ASSERT_OK(RunTxn(db.get(), 1));
  EXPECT_EQ(SpecimenIds(db.get()), kExpectedIds[2]);
}

TEST_F(RecoveryTest, CheckpointTruncatesLogAndPreservesState) {
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  ASSERT_OK(RunTxn(db.get(), 0));
  ASSERT_OK(RunTxn(db.get(), 1));
  uint64_t before = db->wal()->file()->size();
  ASSERT_OK(db->Checkpoint());
  EXPECT_LT(db->wal()->file()->size(), before);
  db.reset();
  media.Crash();

  auto recovered = Reopen(&media);
  ASSERT_OK(recovered.status());
  EXPECT_EQ(SpecimenIds(recovered->get()), kExpectedIds[2]);
}

TEST_F(RecoveryTest, ReplayIsIdempotent) {
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  for (int step = 0; step < kSteps; ++step) {
    ASSERT_OK(RunTxn(db.get(), step));
  }
  db.reset();
  media.Crash();

  FaultDiskManager disk(&media);
  FaultWalFile wal(&media);
  auto first = WriteAheadLog::Replay(&wal, &disk);
  ASSERT_OK(first.status());
  std::vector<std::vector<uint8_t>> after_once = DurablePages(media);
  auto second = WriteAheadLog::Replay(&wal, &disk);
  ASSERT_OK(second.status());
  EXPECT_EQ(DurablePages(media), after_once);
  EXPECT_EQ(second->pages_replayed, first->pages_replayed);
}

TEST_F(RecoveryTest, GroupCommitBatchesFsyncs) {
  SimulatedMedia media1;
  SimulatedMedia media2;
  auto every = OpenFresh(&media1);
  auto grouped = OpenFresh(&media2);
  grouped->wal()->set_group_commit_size(4);

  ASSERT_OK(every->CreateTable("t", {{"x", ColumnType::Int()}},
                               Space::kUser));
  ASSERT_OK(grouped->CreateTable("t", {{"x", ColumnType::Int()}},
                                 Space::kUser));
  for (int i = 0; i < 16; ++i) {
    ASSERT_OK(every->InsertRow("t", {Datum::Int(i)}));
    ASSERT_OK(grouped->InsertRow("t", {Datum::Int(i)}));
  }
  EXPECT_LT(grouped->wal()->sync_count(), every->wal()->sync_count());
  // Group commit trades tail durability, not atomicity: after a crash the
  // recovered database still holds a committed prefix.
  grouped.reset();
  media2.Crash();
  auto recovered = Reopen(&media2);
  ASSERT_OK(recovered.status());
  auto rows = (*recovered)->ScanTable("t");
  ASSERT_OK(rows.status());
  EXPECT_LE(rows->size(), 16u);
}

TEST_F(RecoveryTest, TransientFsyncFailureFailsCommitButIsRetryable) {
  SimulatedMedia media;
  auto db = OpenFresh(&media);
  ASSERT_OK(RunTxn(db.get(), 0));
  media.ArmFault(SimulatedMedia::FaultMode::kFsyncFailOnce, 0);
  EXPECT_FALSE(RunTxn(db.get(), 1).ok());
  // The failed transaction rolled back in-process...
  EXPECT_EQ(SpecimenIds(db.get()), kExpectedIds[1]);
  // ...and the device recovered, so the retry commits.
  ASSERT_OK(RunTxn(db.get(), 1));
  EXPECT_EQ(SpecimenIds(db.get()), kExpectedIds[2]);
}

// ----------------------------------------------------------- Crash matrix.
//
// Sweep every write index of the workload under every fault mode. For
// each cell: run the workload until the fault stops it, pull the plug,
// recover, and require that the database holds exactly the prefix of
// transactions whose Commit() returned OK — logically (row contents) and
// physically (byte-identical durable pages against a fault-free reference
// run of the same prefix). Then crash and recover a second time to check
// recovery is idempotent.

class CrashMatrixTest : public RecoveryTest {
 protected:
  // Durable page state of a fault-free run of the first `prefix` steps,
  // checkpointed.
  std::vector<std::vector<uint8_t>> ReferencePages(int prefix) {
    SimulatedMedia media;
    auto db = OpenFresh(&media);
    for (int step = 0; step < prefix; ++step) {
      Status s = RunTxn(db.get(), step);
      EXPECT_OK(s);
    }
    Status ckpt = db->Checkpoint();
    EXPECT_OK(ckpt);
    return DurablePages(media);
  }

  void RunMatrix(SimulatedMedia::FaultMode mode) {
    // Measure the write-index space on a clean run.
    uint64_t total_writes;
    {
      SimulatedMedia media;
      auto db = OpenFresh(&media);
      media.ArmFault(SimulatedMedia::FaultMode::kNone, 0);
      for (int step = 0; step < kSteps; ++step) {
        ASSERT_OK(RunTxn(db.get(), step));
      }
      total_writes = media.write_count();
    }
    ASSERT_GT(total_writes, 0u);

    std::map<int, std::vector<std::vector<uint8_t>>> reference;
    for (int j = 0; j <= kSteps; ++j) reference[j] = ReferencePages(j);

    // fault_at == total_writes is the no-fault control cell.
    for (uint64_t fault_at = 0; fault_at <= total_writes; ++fault_at) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " fault_at=" + std::to_string(fault_at));
      SimulatedMedia media;
      auto db = OpenFresh(&media);
      media.ArmFault(mode, fault_at);

      int committed = 0;
      for (int step = 0; step < kSteps; ++step) {
        if (!RunTxn(db.get(), step).ok()) break;
        ++committed;
      }
      db.reset();
      media.Crash();

      for (int round = 0; round < 2; ++round) {
        auto recovered = Reopen(&media);
        ASSERT_OK(recovered.status());
        // Exactly the committed prefix: no lost committed transaction, no
        // resurrected aborted one.
        EXPECT_EQ(SpecimenIds(recovered->get()), kExpectedIds[committed]);
        // Byte-level: the durable pages equal the fault-free reference.
        EXPECT_EQ(DurablePages(media), reference[committed]);
        recovered->reset();
        media.Crash();
      }
    }
  }
};

TEST_F(CrashMatrixTest, KillAtEveryWriteIndex) {
  RunMatrix(SimulatedMedia::FaultMode::kKill);
}

TEST_F(CrashMatrixTest, TornWriteAtEveryWriteIndex) {
  RunMatrix(SimulatedMedia::FaultMode::kTorn);
}

TEST_F(CrashMatrixTest, FsyncFailureAtEveryWriteIndex) {
  RunMatrix(SimulatedMedia::FaultMode::kFsyncFail);
}

}  // namespace
}  // namespace genalg::udb
