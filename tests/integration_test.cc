// End-to-end integration across every module: sources -> monitors ->
// integrator -> Unifying Database -> extended SQL -> Genomics Algebra ->
// biologist query language, with the mediator answering the same
// questions for cross-checks and the ontology resolving the terminology.
// This is the whole Figure 3 stack exercised as one system.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "algebra/signature.h"
#include "algebra/term.h"
#include "base/rng.h"
#include "bql/bql.h"
#include "etl/pipeline.h"
#include "etl/source.h"
#include "etl/warehouse.h"
#include "formats/genalgxml.h"
#include "gdt/ops.h"
#include "mediator/mediator.h"
#include "ontology/ontology.h"
#include "seq/nucleotide_sequence.h"
#include "udb/adapter.h"
#include "udb/database.h"

namespace genalg {
namespace {

using etl::SourceCapability;
using etl::SourceRepresentation;
using formats::SequenceRecord;
using seq::NucleotideSequence;

class FullStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(algebra::RegisterStandardAlgebra(&algebra_).ok());
    adapter_ = std::make_unique<udb::Adapter>(&algebra_);
    ASSERT_TRUE(udb::RegisterStandardUdts(adapter_.get()).ok());
    db_ = std::make_unique<udb::Database>(adapter_.get());
    warehouse_ = std::make_unique<etl::Warehouse>(db_.get());
    ASSERT_TRUE(warehouse_->InitSchema().ok());

    // Three repositories spanning the Figure 2 grid.
    sources_.push_back(std::make_unique<etl::SyntheticSource>(
        "GBK", SourceRepresentation::kFlatFile, SourceCapability::kLogged,
        501));
    sources_.push_back(std::make_unique<etl::SyntheticSource>(
        "ACE", SourceRepresentation::kHierarchical,
        SourceCapability::kNonQueryable, 502));
    sources_.push_back(std::make_unique<etl::SyntheticSource>(
        "REL", SourceRepresentation::kRelational,
        SourceCapability::kQueryable, 503));
    for (auto& source : sources_) {
      ASSERT_TRUE(source->Populate(10, 300).ok());
    }

    // Plant a known gene (with canonical intron) in the flat-file source
    // so downstream algebra has something biological to chew on.
    SequenceRecord planted;
    planted.accession = "GBKPLANT1";
    planted.source_db = "GBK";
    planted.organism = "Synthetica exempli";
    planted.description = "planted gene for integration test";
    planted.sequence = NucleotideSequence::Dna(
                           "CCCC" "ATGAAAGTCCAGGTTTAA" "GGGG").value();
    gdt::Feature gene;
    gene.id = "PG1";
    gene.kind = gdt::FeatureKind::kGene;
    gene.span = {4, 22};
    planted.features.push_back(gene);
    ASSERT_TRUE(sources_[0]->AddRecord(planted).ok());

    pipeline_ = std::make_unique<etl::EtlPipeline>(warehouse_.get());
    for (auto& source : sources_) {
      ASSERT_TRUE(pipeline_->AddSource(source.get()).ok());
    }
    ASSERT_TRUE(pipeline_->InitialLoad().ok());
  }

  algebra::SignatureRegistry algebra_;
  std::unique_ptr<udb::Adapter> adapter_;
  std::unique_ptr<udb::Database> db_;
  std::unique_ptr<etl::Warehouse> warehouse_;
  std::vector<std::unique_ptr<etl::SyntheticSource>> sources_;
  std::unique_ptr<etl::EtlPipeline> pipeline_;
};

TEST_F(FullStackTest, LoadedEverything) {
  EXPECT_EQ(warehouse_->SequenceCount().value(), 31);
  auto features = db_->Execute("SELECT count(*) FROM features");
  ASSERT_TRUE(features.ok());
  EXPECT_GT(features->rows[0][0].AsInt().value(), 0);
}

TEST_F(FullStackTest, SqlToAlgebraToGdtPipeline) {
  // Pull the planted sequence out of the warehouse by SQL, lift it into
  // the algebra, extract the gene region, and decode it — storage and
  // computation meeting exactly as Sec. 6 prescribes.
  auto r = db_->Execute(
      "SELECT seq FROM sequences WHERE accession = 'GBKPLANT1'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  auto value = adapter_->ToValue(r->rows[0][0]);
  ASSERT_TRUE(value.ok());
  auto chromosome = value->AsNucSeq();
  ASSERT_TRUE(chromosome.ok());

  gdt::Gene gene;
  gene.id = "PG1";
  gene.sequence = chromosome->Subsequence(4, 18).value();
  gene.exons = {{0, 6}, {12, 18}};
  auto protein = gdt::Decode(gene);
  ASSERT_TRUE(protein.ok());
  EXPECT_EQ(protein->sequence.ToString(), "MKV");
}

TEST_F(FullStackTest, FeatureRowsMatchSourceAnnotations) {
  auto r = db_->Execute(
      "SELECT kind, begin, fin FROM features WHERE accession = "
      "'GBKPLANT1'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString().value(), "gene");
  EXPECT_EQ(r->rows[0][1].AsInt().value(), 4);
  EXPECT_EQ(r->rows[0][2].AsInt().value(), 22);
}

TEST_F(FullStackTest, BqlMediatorAndSqlAgree) {
  auto pattern = NucleotideSequence::Dna("ATGAAAGTCCAG").value();

  // Warehouse via raw SQL.
  auto sql = db_->Execute(
      "SELECT accession FROM sequences WHERE contains(seq, "
      "parse_dna('ATGAAAGTCCAG')) ORDER BY accession");
  ASSERT_TRUE(sql.ok());

  // Warehouse via the biologist language.
  auto bql = bql::RunBql(db_.get(),
                         "find sequences containing ATGAAAGTCCAG");
  ASSERT_TRUE(bql.ok());
  ASSERT_EQ(bql->rows.size(), sql->rows.size());

  // The same question against the live sources through the mediator.
  mediator::Mediator mediator;
  for (auto& source : sources_) mediator.AddSource(source.get());
  auto mediated = mediator.FindContaining(pattern);
  ASSERT_TRUE(mediated.ok());
  std::set<std::string> warehouse_hits;
  for (const auto& row : sql->rows) {
    warehouse_hits.insert(*row[0].AsString());
  }
  std::set<std::string> mediator_hits;
  for (const auto& record : *mediated) {
    mediator_hits.insert(record.accession);
  }
  EXPECT_EQ(warehouse_hits, mediator_hits);
  EXPECT_TRUE(warehouse_hits.count("GBKPLANT1"));
}

TEST_F(FullStackTest, MaintenanceKeepsWarehouseConsistentOverRounds) {
  Rng rng(601);
  for (int round = 0; round < 5; ++round) {
    for (auto& source : sources_) {
      ASSERT_TRUE(source->EvolveStep(0.2, 0.5).ok());
    }
    ASSERT_TRUE(pipeline_->RunOnce().ok());
    size_t expected = 0;
    for (auto& source : sources_) expected += source->record_count();
    EXPECT_EQ(warehouse_->SequenceCount().value(),
              static_cast<int64_t>(expected))
        << "round " << round;
  }
  // After all that churn the warehouse still equals a fresh reload.
  auto incremental = db_->Execute(
      "SELECT accession, version FROM sequences ORDER BY accession");
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(pipeline_->FullReload().ok());
  auto reloaded = db_->Execute(
      "SELECT accession, version FROM sequences ORDER BY accession");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(incremental->rows, reloaded->rows);
}

TEST_F(FullStackTest, UserSpaceAnalysisOverPublicData) {
  // A biologist stores probes, joins them against the warehouse, and
  // aggregates — C13 in one statement.
  ASSERT_TRUE(db_->Execute(
                     "CREATE TABLE probes (name TEXT, p NUCSEQ) SPACE USER")
                  .ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO probes VALUES "
                           "('plant', parse_dna('ATGAAAGTCCAG')), "
                           "('nohit', parse_dna('AAAAAAAAAAAAAAAAAAAAAA'))")
                  .ok());
  auto r = db_->Execute(
      "SELECT probes.name, count(*) FROM probes, sequences "
      "WHERE contains(sequences.seq, probes.p) GROUP BY probes.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);  // Only the matching probe groups.
  EXPECT_EQ(r->rows[0][0].AsString().value(), "plant");
}

TEST_F(FullStackTest, OntologyResolvesRepositoryTermsToAlgebra) {
  auto onto = ontology::BuildCoreGenomicsOntology().value();
  // A repository says "pre-mRNA"; the ontology maps it to the sort the
  // warehouse's algebra actually implements.
  auto term = onto.Resolve("pre-mRNA");
  ASSERT_TRUE(term.ok());
  auto sort = onto.SortOf((*term)->id);
  ASSERT_TRUE(sort.ok());
  EXPECT_TRUE(algebra_.HasSort(*sort));
  // And the process vocabulary maps to executable operators.
  auto splicing = onto.Resolve("splicing");
  ASSERT_TRUE(splicing.ok());
  auto op = onto.OperatorOf((*splicing)->id);
  ASSERT_TRUE(op.ok());
  EXPECT_FALSE(algebra_.OverloadsOf(*op).empty());
}

TEST_F(FullStackTest, WarehouseContentExportsAsGenAlgXml) {
  // The standardized I/O facility of Sec. 6.4: warehouse rows out to
  // GenAlgXML and back without loss of the sequence payload.
  auto rows = db_->Execute(
      "SELECT accession, organism, seq FROM sequences ORDER BY accession "
      "LIMIT 5");
  ASSERT_TRUE(rows.ok());
  std::vector<SequenceRecord> records;
  for (const auto& row : rows->rows) {
    SequenceRecord r;
    r.accession = *row[0].AsString();
    r.organism = *row[1].AsString();
    auto value = adapter_->ToValue(row[2]);
    ASSERT_TRUE(value.ok());
    r.sequence = *value->AsNucSeq();
    records.push_back(std::move(r));
  }
  auto xml = formats::WriteGenAlgXml(records);
  auto back = formats::ParseGenAlgXml(xml);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i].accession, records[i].accession);
    EXPECT_EQ((*back)[i].sequence, records[i].sequence);
  }
}

TEST_F(FullStackTest, IndexedWarehouseAnswersAreIdenticalToScans) {
  auto unindexed = db_->Execute(
      "SELECT accession FROM sequences WHERE contains(seq, "
      "parse_dna('ATGAAAGTCCAG')) ORDER BY accession");
  ASSERT_TRUE(unindexed.ok());
  ASSERT_TRUE(db_->CreateKmerIndex("sequences", "seq").ok());
  auto indexed = db_->Execute(
      "SELECT accession FROM sequences WHERE contains(seq, "
      "parse_dna('ATGAAAGTCCAG')) ORDER BY accession");
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(unindexed->rows, indexed->rows);
  // And the index stays correct under subsequent maintenance.
  for (auto& source : sources_) ASSERT_TRUE(source->EvolveStep(0.3).ok());
  ASSERT_TRUE(pipeline_->RunOnce().ok());
  auto after = db_->Execute(
      "SELECT count(*) FROM sequences WHERE contains(seq, "
      "parse_dna('ATGAAAGTCCAG'))");
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->rows[0][0].AsInt().value(), 0);
}

}  // namespace
}  // namespace genalg
