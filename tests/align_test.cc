#include <gtest/gtest.h>

#include <string>

#include "align/aligner.h"
#include "align/scoring.h"
#include "base/rng.h"
#include "seq/nucleotide_sequence.h"
#include "seq/protein_sequence.h"

namespace genalg::align {
namespace {

using seq::NucleotideSequence;
using seq::ProteinSequence;

// ----------------------------------------------------- SubstitutionMatrix.

TEST(ScoringTest, NucleotideMatchMismatch) {
  auto m = SubstitutionMatrix::Nucleotide(2, -1);
  EXPECT_EQ(m.Score('A', 'A'), 2);
  EXPECT_EQ(m.Score('A', 'a'), 2);
  EXPECT_EQ(m.Score('A', 'C'), -1);
  // Ambiguity: N is compatible with everything, R with A/G only.
  EXPECT_EQ(m.Score('N', 'T'), 2);
  EXPECT_EQ(m.Score('R', 'A'), 2);
  EXPECT_EQ(m.Score('R', 'T'), -1);
  // Non-IUPAC characters are mismatches.
  EXPECT_EQ(m.Score('Q', 'A'), -1);
}

TEST(ScoringTest, Blosum62KnownValues) {
  const auto& b = SubstitutionMatrix::Blosum62();
  EXPECT_EQ(b.Score('A', 'A'), 4);
  EXPECT_EQ(b.Score('W', 'W'), 11);
  EXPECT_EQ(b.Score('A', 'W'), -3);
  EXPECT_EQ(b.Score('L', 'I'), 2);
  EXPECT_EQ(b.Score('*', '*'), 1);
  EXPECT_EQ(b.Score('E', 'D'), 2);
  // Symmetry over the whole symbol set.
  std::string syms = "ARNDCQEGHILKMFPSTWYVBZX*";
  for (char x : syms) {
    for (char y : syms) EXPECT_EQ(b.Score(x, y), b.Score(y, x));
  }
  // Unknown symbols behave like X.
  EXPECT_EQ(b.Score('J', 'A'), b.Score('X', 'A'));
}

// ------------------------------------------------------------ GlobalAlign.

TEST(GlobalAlignTest, IdenticalSequences) {
  auto r = GlobalAlign("ACGT", "ACGT", SubstitutionMatrix::Nucleotide(),
                       GapPenalties{-5, -1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 8);
  EXPECT_EQ(r->aligned_a, "ACGT");
  EXPECT_EQ(r->aligned_b, "ACGT");
  EXPECT_DOUBLE_EQ(r->Identity(), 1.0);
}

TEST(GlobalAlignTest, SingleGap) {
  // ACGT vs AGT: best is deleting C.
  auto r = GlobalAlign("ACGT", "AGT", SubstitutionMatrix::Nucleotide(2, -1),
                       GapPenalties{-2, -1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 3 * 2 - 3);  // Three matches, one opened gap.
  EXPECT_EQ(r->aligned_a, "ACGT");
  EXPECT_EQ(r->aligned_b, "A-GT");
}

TEST(GlobalAlignTest, EmptySequences) {
  auto r = GlobalAlign("", "", SubstitutionMatrix::Nucleotide(),
                       GapPenalties{-5, -1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 0);
  EXPECT_EQ(r->Length(), 0u);

  auto r2 = GlobalAlign("ACG", "", SubstitutionMatrix::Nucleotide(),
                        GapPenalties{-5, -1});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->score, -5 - 3);  // One gap run of length 3.
  EXPECT_EQ(r2->aligned_b, "---");
}

TEST(GlobalAlignTest, AffineGapPrefersOneLongGap) {
  // With affine gaps a single run of 2 is cheaper than two isolated gaps.
  // a: AATTTTAA, b: AATTAA -> drop "TT" contiguously.
  auto r = GlobalAlign("AATTTTAA", "AATTAA",
                       SubstitutionMatrix::Nucleotide(2, -3),
                       GapPenalties{-4, -1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 6 * 2 - 4 - 2);
  // The two gap columns must be adjacent.
  size_t first_gap = r->aligned_b.find('-');
  ASSERT_NE(first_gap, std::string::npos);
  EXPECT_EQ(r->aligned_b[first_gap + 1], '-');
}

TEST(GlobalAlignTest, GappedStringsReproduceInputs) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a = rng.RandomDna(20 + rng.Uniform(60));
    std::string b = rng.RandomDna(20 + rng.Uniform(60));
    auto r = GlobalAlign(a, b, SubstitutionMatrix::Nucleotide(),
                         GapPenalties{-4, -1});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->aligned_a.size(), r->aligned_b.size());
    std::string sa, sb;
    for (char c : r->aligned_a) {
      if (c != '-') sa.push_back(c);
    }
    for (char c : r->aligned_b) {
      if (c != '-') sb.push_back(c);
    }
    EXPECT_EQ(sa, a);
    EXPECT_EQ(sb, b);
    // No column may be a double gap.
    for (size_t i = 0; i < r->aligned_a.size(); ++i) {
      EXPECT_FALSE(r->aligned_a[i] == '-' && r->aligned_b[i] == '-');
    }
  }
}

TEST(GlobalAlignTest, RejectsPositiveGapPenalty) {
  EXPECT_TRUE(GlobalAlign("A", "A", SubstitutionMatrix::Nucleotide(),
                          GapPenalties{1, -1})
                  .status()
                  .IsInvalidArgument());
}

TEST(GlobalAlignTest, ProteinOverloadUsesBlosum) {
  auto a = ProteinSequence::FromString("HEAGAWGHEE").value();
  auto b = ProteinSequence::FromString("PAWHEAE").value();
  auto r = GlobalAlign(a, b, GapPenalties{-8, -2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->aligned_a.size(), r->aligned_b.size());
}

// ------------------------------------------------------------- LocalAlign.

TEST(LocalAlignTest, FindsEmbeddedMatch) {
  // The classic: a short exact region inside noise.
  auto r = LocalAlign("CCCCACGTACGTCCCC", "GGGGACGTACGTGGGG",
                      SubstitutionMatrix::Nucleotide(2, -3),
                      GapPenalties{-5, -2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->aligned_a, "ACGTACGT");
  EXPECT_EQ(r->aligned_b, "ACGTACGT");
  EXPECT_EQ(r->score, 16);
  EXPECT_EQ(r->begin_a, 4u);
  EXPECT_EQ(r->end_a, 12u);
  EXPECT_EQ(r->begin_b, 4u);
  EXPECT_EQ(r->end_b, 12u);
}

TEST(LocalAlignTest, NoPositiveScoreGivesEmptyAlignment) {
  auto r = LocalAlign("AAAA", "CCCC", SubstitutionMatrix::Nucleotide(2, -3),
                      GapPenalties{-5, -2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 0);
  EXPECT_EQ(r->Length(), 0u);
}

TEST(LocalAlignTest, LocalScoreAtLeastGlobalScore) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a = rng.RandomDna(30 + rng.Uniform(40));
    std::string b = rng.RandomDna(30 + rng.Uniform(40));
    auto g = GlobalAlign(a, b, SubstitutionMatrix::Nucleotide(),
                         GapPenalties{-4, -1});
    auto l = LocalAlign(a, b, SubstitutionMatrix::Nucleotide(),
                        GapPenalties{-4, -1});
    ASSERT_TRUE(g.ok() && l.ok());
    EXPECT_GE(l->score, g->score);
    EXPECT_GE(l->score, 0);
  }
}

TEST(LocalAlignTest, SubsequenceAlignsPerfectly) {
  Rng rng(13);
  std::string genome = rng.RandomDna(400);
  std::string read = genome.substr(100, 50);
  auto r = LocalAlign(read, genome, SubstitutionMatrix::Nucleotide(2, -3),
                      GapPenalties{-5, -2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 100);  // 50 matches x 2.
  EXPECT_EQ(r->begin_b, 100u);
  EXPECT_EQ(r->end_b, 150u);
  EXPECT_DOUBLE_EQ(r->Identity(), 1.0);
}

// ------------------------------------------------------ BandedGlobalAlign.

TEST(BandedAlignTest, WideBandMatchesFullNw) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    std::string a = rng.RandomDna(20 + rng.Uniform(30));
    std::string b = rng.RandomDna(20 + rng.Uniform(30));
    // Linear-gap NW is affine NW with open = 0.
    auto full = GlobalAlign(a, b, SubstitutionMatrix::Nucleotide(),
                            GapPenalties{0, -2});
    auto banded = BandedGlobalAlign(a, b, SubstitutionMatrix::Nucleotide(),
                                    -2, std::max(a.size(), b.size()));
    ASSERT_TRUE(full.ok() && banded.ok());
    EXPECT_EQ(banded->score, full->score);
  }
}

TEST(BandedAlignTest, NarrowBandAlignsSimilarSequences) {
  Rng rng(19);
  std::string a = rng.RandomDna(200);
  std::string b = a;
  b[50] = b[50] == 'A' ? 'C' : 'A';  // One substitution.
  auto r = BandedGlobalAlign(a, b, SubstitutionMatrix::Nucleotide(2, -1),
                             -2, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->score, 199 * 2 - 1);
}

TEST(BandedAlignTest, BandMustBridgeLengthDifference) {
  EXPECT_TRUE(BandedGlobalAlign("AAAAAAAAAA", "AA",
                                SubstitutionMatrix::Nucleotide(), -1, 3)
                  .status()
                  .IsInvalidArgument());
}

TEST(BandedAlignTest, TracebackReproducesInputs) {
  Rng rng(23);
  std::string a = rng.RandomDna(100);
  std::string b = a.substr(0, 40) + a.substr(45);  // 5-base deletion.
  auto r = BandedGlobalAlign(a, b, SubstitutionMatrix::Nucleotide(), -2, 8);
  ASSERT_TRUE(r.ok());
  std::string sa, sb;
  for (char c : r->aligned_a) {
    if (c != '-') sa.push_back(c);
  }
  for (char c : r->aligned_b) {
    if (c != '-') sb.push_back(c);
  }
  EXPECT_EQ(sa, a);
  EXPECT_EQ(sb, b);
}

// -------------------------------------------------------------- Resembles.

TEST(ResemblesTest, PaperStyleSimilarityPredicate) {
  Rng rng(29);
  std::string base = rng.RandomDna(120);
  auto a = NucleotideSequence::Dna(base).value();
  // A noisy copy: 5% substitutions.
  std::string noisy = base;
  for (size_t i = 0; i < noisy.size(); ++i) {
    if (rng.Bernoulli(0.05)) noisy[i] = rng.Pick("ACGT");
  }
  auto b = NucleotideSequence::Dna(noisy).value();
  EXPECT_TRUE(Resembles(a, b, 0.8, 16).value());
  // An unrelated sequence does not resemble.
  auto c = NucleotideSequence::Dna(Rng(31).RandomDna(120)).value();
  EXPECT_FALSE(Resembles(a, c, 0.95, 60).value());
}

TEST(ResemblesTest, ShortOverlapRejected) {
  auto a = NucleotideSequence::Dna("ACGTACGTAC").value();
  auto b = NucleotideSequence::Dna("ACGTACGTAC").value();
  EXPECT_TRUE(Resembles(a, b, 0.9, 10).value());
  EXPECT_FALSE(Resembles(a, b, 0.9, 11).value());  // Only 10 bases exist.
}

TEST(ResemblesTest, ValidatesIdentityRange) {
  auto a = NucleotideSequence::Dna("ACGT").value();
  EXPECT_TRUE(Resembles(a, a, 1.5, 1).status().IsInvalidArgument());
}

TEST(ResemblesTest, IsSymmetricOnRandomInputs) {
  Rng rng(37);
  for (int trial = 0; trial < 6; ++trial) {
    auto a = NucleotideSequence::Dna(rng.RandomDna(60)).value();
    auto b = NucleotideSequence::Dna(rng.RandomDna(60)).value();
    EXPECT_EQ(Resembles(a, b, 0.7, 12).value(),
              Resembles(b, a, 0.7, 12).value());
  }
}

// ------------------------------------ Property sweep over gap penalties.

class GapSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GapSweepTest, GlobalAlignmentInvariants) {
  auto [open, extend] = GetParam();
  Rng rng(static_cast<uint64_t>(open * -31 + extend * -7 + 1));
  std::string a = rng.RandomDna(40);
  std::string b = rng.RandomDna(35);
  auto r = GlobalAlign(a, b, SubstitutionMatrix::Nucleotide(),
                       GapPenalties{open, extend});
  ASSERT_TRUE(r.ok());
  // Alignment of x with itself is never worse than with anything else.
  auto self = GlobalAlign(a, a, SubstitutionMatrix::Nucleotide(),
                          GapPenalties{open, extend});
  EXPECT_GE(self->score, r->score);
  EXPECT_EQ(self->score, static_cast<int64_t>(a.size()) * 2);
  // Score symmetry.
  auto rev = GlobalAlign(b, a, SubstitutionMatrix::Nucleotide(),
                         GapPenalties{open, extend});
  EXPECT_EQ(rev->score, r->score);
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, GapSweepTest,
    ::testing::Combine(::testing::Values(0, -2, -5, -10),
                       ::testing::Values(-1, -2, -4)));

}  // namespace
}  // namespace genalg::align
