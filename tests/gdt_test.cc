#include <gtest/gtest.h>

#include <string>

#include "base/bytes.h"
#include "base/rng.h"
#include "gdt/entities.h"
#include "gdt/feature.h"
#include "gdt/ops.h"
#include "seq/codon_table.h"
#include "seq/nucleotide_sequence.h"

namespace genalg::gdt {
namespace {

using seq::NucleotideSequence;

// A canonical test gene encoding MKV: exon1 "ATGAAA", canonical intron
// "GTCCAG" (GU...AG), exon2 "GTTTAA" (V + stop).
Gene MakeTestGene() {
  Gene g;
  g.id = "GENE1";
  g.name = "testA";
  g.organism = "Synthetica exempli";
  g.sequence = NucleotideSequence::Dna("ATGAAAGTCCAGGTTTAA").value();
  g.exons = {{0, 6}, {12, 18}};
  g.codon_table_id = 1;
  return g;
}

// ----------------------------------------------------------- Interval.

TEST(IntervalTest, Basics) {
  Interval a{2, 5};
  EXPECT_EQ(a.length(), 3u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(a.Contains(2));
  EXPECT_TRUE(a.Contains(4));
  EXPECT_FALSE(a.Contains(5));
  EXPECT_TRUE((Interval{5, 5}).empty());
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE((Interval{0, 5}).Overlaps({4, 10}));
  EXPECT_FALSE((Interval{0, 5}).Overlaps({5, 10}));  // Half-open touch.
  EXPECT_TRUE((Interval{3, 4}).Overlaps({0, 10}));
}

// ------------------------------------------------------------ Feature.

TEST(FeatureTest, KindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(FeatureKind::kOther); ++k) {
    FeatureKind kind = static_cast<FeatureKind>(k);
    EXPECT_EQ(FeatureKindFromString(FeatureKindToString(kind)), kind);
  }
  EXPECT_EQ(FeatureKindFromString("GENE"), FeatureKind::kGene);
  EXPECT_EQ(FeatureKindFromString("weird_key"), FeatureKind::kOther);
}

TEST(FeatureTest, SerializeRoundTrip) {
  Feature f;
  f.id = "F1";
  f.kind = FeatureKind::kCds;
  f.span = {100, 400};
  f.strand = Strand::kReverse;
  f.confidence = 0.75;
  f.qualifiers = {{"gene", "GENE1"}, {"note", "reconciled from 2 sources"}};
  BytesWriter w;
  f.Serialize(&w);
  BytesReader r(w.data());
  auto back = Feature::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, f);
}

TEST(FeatureTest, DeserializeRejectsBadTagsAndConfidence) {
  Feature f;
  f.id = "F1";
  BytesWriter w;
  f.Serialize(&w);
  {
    auto bytes = w.data();
    bytes[3] = 99;  // Kind tag (after 1-byte varint len + 2-char id).
    BytesReader r(bytes.data(), bytes.size());
    EXPECT_TRUE(Feature::Deserialize(&r).status().IsCorruption());
  }
  {
    Feature g;
    g.id = "F1";
    g.confidence = 1.0;
    BytesWriter w2;
    g.Serialize(&w2);
    auto bytes = w2.data();
    // Corrupt the confidence double to 2.0 (bytes 6..13 after id(3),
    // kind(1), begin(1), end(1), strand(1) = offset 7).
    BytesReader probe(bytes.data(), bytes.size());
    (void)probe;
    // Simpler: rebuild with a hand-written bad confidence.
    BytesWriter bad;
    bad.PutString("F1");
    bad.PutU8(0);
    bad.PutVarint(0);
    bad.PutVarint(0);
    bad.PutU8(0);
    bad.PutF64(2.0);
    bad.PutVarint(0);
    BytesReader r(bad.data());
    EXPECT_TRUE(Feature::Deserialize(&r).status().IsCorruption());
  }
}

// -------------------------------------------------------------- Entities.

TEST(GeneTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakeTestGene().Validate().ok());
}

TEST(GeneTest, ValidateRejectsBadExons) {
  Gene g = MakeTestGene();
  g.exons = {{0, 6}, {4, 10}};  // Overlap.
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
  g.exons = {{0, 100}};  // Past the end.
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
  g.exons = {{3, 3}};  // Empty.
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(GeneTest, ValidateRejectsRna) {
  Gene g = MakeTestGene();
  g.sequence = NucleotideSequence::Rna("AUG").value();
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(EntitiesTest, SerializeRoundTrips) {
  Gene g = MakeTestGene();
  BytesWriter w;
  g.Serialize(&w);
  BytesReader r(w.data());
  EXPECT_EQ(Gene::Deserialize(&r).value(), g);

  PrimaryTranscript t = Transcribe(g).value();
  BytesWriter wt;
  t.Serialize(&wt);
  BytesReader rt(wt.data());
  EXPECT_EQ(PrimaryTranscript::Deserialize(&rt).value(), t);

  MRna m = Splice(t).value();
  BytesWriter wm;
  m.Serialize(&wm);
  BytesReader rm(wm.data());
  EXPECT_EQ(MRna::Deserialize(&rm).value(), m);

  Protein p = Translate(m).value();
  BytesWriter wp;
  p.Serialize(&wp);
  BytesReader rp(wp.data());
  EXPECT_EQ(Protein::Deserialize(&rp).value(), p);
}

TEST(GenomeTest, SerializeRoundTripAndLookup) {
  Genome genome;
  genome.organism = "Synthetica exempli";
  Chromosome chrom;
  chrom.name = "chr1";
  chrom.sequence = NucleotideSequence::Dna("ACGTACGTACGT").value();
  Feature f;
  f.id = "G1";
  f.kind = FeatureKind::kGene;
  f.span = {2, 10};
  chrom.features.push_back(f);
  genome.chromosomes.push_back(chrom);

  BytesWriter w;
  genome.Serialize(&w);
  BytesReader r(w.data());
  EXPECT_EQ(Genome::Deserialize(&r).value(), genome);

  EXPECT_EQ(genome.TotalLength(), 12u);
  EXPECT_TRUE(genome.FindChromosome("chr1").ok());
  EXPECT_TRUE(genome.FindChromosome("chrX").status().IsNotFound());
}

TEST(ChromosomeTest, FeaturesInRange) {
  Chromosome chrom;
  chrom.sequence = NucleotideSequence::Dna("ACGTACGTAC").value();
  Feature gene1{"G1", FeatureKind::kGene, {0, 4}, Strand::kForward, 1.0, {}};
  Feature gene2{"G2", FeatureKind::kGene, {6, 9}, Strand::kForward, 1.0, {}};
  Feature exon1{"E1", FeatureKind::kExon, {0, 2}, Strand::kForward, 1.0, {}};
  chrom.features = {gene1, gene2, exon1};
  auto hits = chrom.FeaturesInRange(FeatureKind::kGene, 0, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->id, "G1");
  EXPECT_EQ(chrom.FeaturesInRange(FeatureKind::kGene, 0, 10).size(), 2u);
  EXPECT_EQ(chrom.FeaturesInRange(FeatureKind::kExon, 4, 10).size(), 0u);
}

TEST(GenomeTest, ExtractGeneForwardStrand) {
  Genome genome;
  genome.organism = "Synthetica exempli";
  Chromosome chrom;
  chrom.name = "chr1";
  // Pad the test gene with flanking sequence.
  chrom.sequence =
      NucleotideSequence::Dna("CCCC" "ATGAAAGTCCAGGTTTAA" "GGGG").value();
  Feature gene{"G1", FeatureKind::kGene, {4, 22}, Strand::kForward, 1.0,
               {{"name", "testA"}}};
  Feature exon1{"E1", FeatureKind::kExon, {4, 10}, Strand::kForward, 1.0,
                {{"gene", "G1"}}};
  Feature exon2{"E2", FeatureKind::kExon, {16, 22}, Strand::kForward, 1.0,
                {{"gene", "G1"}}};
  chrom.features = {gene, exon1, exon2};
  genome.chromosomes.push_back(chrom);

  auto extracted = genome.ExtractGene("G1");
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  EXPECT_EQ(extracted->sequence.ToString(), "ATGAAAGTCCAGGTTTAA");
  EXPECT_EQ(extracted->exons, (std::vector<Interval>{{0, 6}, {12, 18}}));
  EXPECT_EQ(extracted->name, "testA");

  // The extracted gene decodes to the expected protein.
  auto protein = Decode(*extracted);
  ASSERT_TRUE(protein.ok()) << protein.status().ToString();
  EXPECT_EQ(protein->sequence.ToString(), "MKV");
}

TEST(GenomeTest, ExtractGeneReverseStrand) {
  // Place the reverse complement of the test gene on the chromosome; the
  // biological gene reads on the reverse strand.
  std::string gene_fwd = "ATGAAAGTCCAGGTTTAA";
  std::string gene_rc =
      NucleotideSequence::Dna(gene_fwd).value().ReverseComplement().ToString();
  Genome genome;
  Chromosome chrom;
  chrom.name = "chr1";
  chrom.sequence = NucleotideSequence::Dna("TT" + gene_rc + "AA").value();
  Feature gene{"G1", FeatureKind::kGene, {2, 20}, Strand::kReverse, 1.0, {}};
  // Exons in chromosome coordinates: gene-local [0,6) on the reverse strand
  // is chromosomal [14,20); [12,18) maps to [2,8).
  Feature exon1{"E1", FeatureKind::kExon, {14, 20}, Strand::kReverse, 1.0,
                {{"gene", "G1"}}};
  Feature exon2{"E2", FeatureKind::kExon, {2, 8}, Strand::kReverse, 1.0,
                {{"gene", "G1"}}};
  chrom.features = {gene, exon1, exon2};
  genome.chromosomes.push_back(chrom);

  auto extracted = genome.ExtractGene("G1");
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  EXPECT_EQ(extracted->sequence.ToString(), gene_fwd);
  EXPECT_EQ(extracted->exons, (std::vector<Interval>{{0, 6}, {12, 18}}));
  EXPECT_EQ(Decode(*extracted)->sequence.ToString(), "MKV");
}

TEST(GenomeTest, ExtractGeneNotFound) {
  Genome genome;
  EXPECT_TRUE(genome.ExtractGene("NOPE").status().IsNotFound());
}

// ----------------------------------------------- The paper's mini-algebra.

TEST(OpsTest, TranscribeProducesRnaWithStructure) {
  Gene g = MakeTestGene();
  auto t = Transcribe(g);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->sequence.alphabet(), seq::Alphabet::kRna);
  EXPECT_EQ(t->sequence.ToString(), "AUGAAAGUCCAGGUUUAA");
  EXPECT_EQ(t->exons, g.exons);
  EXPECT_EQ(t->gene_id, "GENE1");
  EXPECT_DOUBLE_EQ(t->confidence, 1.0);
}

TEST(OpsTest, SpliceRemovesCanonicalIntronAtFullConfidence) {
  auto m = Splice(Transcribe(MakeTestGene()).value());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->sequence.ToString(), "AUGAAAGUUUAA");
  EXPECT_DOUBLE_EQ(m->confidence, 1.0);  // GU...AG is canonical.
}

TEST(OpsTest, SpliceNonCanonicalIntronReducesConfidence) {
  Gene g = MakeTestGene();
  // Replace the intron with AACCTT (no GU...AG).
  g.sequence = NucleotideSequence::Dna("ATGAAA" "AACCTT" "GTTTAA").value();
  auto m = Splice(Transcribe(g).value());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->sequence.ToString(), "AUGAAAGUUUAA");
  EXPECT_DOUBLE_EQ(m->confidence, kNonCanonicalIntronPenalty);
}

TEST(OpsTest, SpliceWithoutExonsPassesSequenceThrough) {
  PrimaryTranscript t;
  t.sequence = NucleotideSequence::Rna("AUGUUUUAA").value();
  auto m = Splice(t);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->sequence.ToString(), "AUGUUUUAA");
}

TEST(OpsTest, SpliceRejectsDnaAndBadExons) {
  PrimaryTranscript t;
  t.sequence = NucleotideSequence::Dna("ATG").value();
  EXPECT_TRUE(Splice(t).status().IsInvalidArgument());
  t.sequence = NucleotideSequence::Rna("AUGAAA").value();
  t.exons = {{0, 100}};
  EXPECT_TRUE(Splice(t).status().IsInvalidArgument());
  t.exons = {{0, 4}, {2, 6}};
  EXPECT_TRUE(Splice(t).status().IsInvalidArgument());
}

TEST(OpsTest, TranslateFindsStartAndStops) {
  MRna m;
  m.gene_id = "GENE1";
  // Leader bases before AUG are skipped.
  m.sequence = NucleotideSequence::Rna("CCAUGAAAGUUUAAGG").value();
  auto p = Translate(m);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->sequence.ToString(), "MKV");
  EXPECT_DOUBLE_EQ(p->confidence, 1.0);
  EXPECT_EQ(p->gene_id, "GENE1");
  EXPECT_EQ(p->id, "GENE1.p");
}

TEST(OpsTest, TranslateWithoutStopLosesConfidence) {
  MRna m;
  m.sequence = NucleotideSequence::Rna("AUGAAAGUU").value();
  auto p = Translate(m);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->sequence.ToString(), "MKV");
  EXPECT_DOUBLE_EQ(p->confidence, kMissingStopPenalty);
}

TEST(OpsTest, TranslateAmbiguousCodonYieldsXAndPenalty) {
  MRna m;
  // AUG then RAA (K or E -> X) then UAA stop.
  m.sequence = NucleotideSequence::Rna("AUGRAAUAA").value();
  auto p = Translate(m);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->sequence.ToString(), "MX");
  EXPECT_DOUBLE_EQ(p->confidence, 0.5);  // 1 of 2 residues ambiguous.
}

TEST(OpsTest, TranslateNoStartIsNotFound) {
  MRna m;
  m.sequence = NucleotideSequence::Rna("CCCCCCAAA").value();
  EXPECT_TRUE(Translate(m).status().IsNotFound());
}

TEST(OpsTest, TranslateHonorsCodonTable) {
  MRna m;
  // AUG UGA: stop in standard code, tryptophan in vertebrate mito.
  m.sequence = NucleotideSequence::Rna("AUGUGAUAA").value();
  m.codon_table_id = 1;
  EXPECT_EQ(Translate(m)->sequence.ToString(), "M");
  m.codon_table_id = 2;
  EXPECT_EQ(Translate(m)->sequence.ToString(), "MW");
  m.codon_table_id = 999;
  EXPECT_TRUE(Translate(m).status().IsNotFound());
}

TEST(OpsTest, DecodeComposesThePipeline) {
  // The paper's term: translate(splice(transcribe(g))).
  auto p = Decode(MakeTestGene());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->sequence.ToString(), "MKV");
  EXPECT_DOUBLE_EQ(p->confidence, 1.0);
}

TEST(OpsTest, DecodePropagatesInputConfidence) {
  Gene g = MakeTestGene();
  g.confidence = 0.6;
  EXPECT_DOUBLE_EQ(Decode(g)->confidence, 0.6);
}

// -------------------------------------------------- Contains and motifs.

TEST(OpsTest, ContainsPaperExample) {
  // Sec. 6.3: contains(fragment, "ATTGCCATA").
  auto fragment = NucleotideSequence::Dna("GGGATTGCCATAGG").value();
  auto pattern = NucleotideSequence::Dna("ATTGCCATA").value();
  EXPECT_TRUE(Contains(fragment, pattern));
  EXPECT_FALSE(Contains(pattern, fragment));
}

TEST(OpsTest, FindMotifReportsAllOverlappingHits) {
  auto subject = NucleotideSequence::Dna("AAAA").value();
  auto motif = NucleotideSequence::Dna("AA").value();
  EXPECT_EQ(FindMotif(subject, motif), (std::vector<uint64_t>{0, 1, 2}));
  auto none = NucleotideSequence::Dna("CCC").value();
  EXPECT_TRUE(FindMotif(subject, none).empty());
  auto empty = NucleotideSequence::Dna("").value();
  EXPECT_TRUE(FindMotif(subject, empty).empty());
}

// ----------------------------------------------------------------- ORFs.

TEST(OpsTest, FindOrfsForwardFrame) {
  auto dna = NucleotideSequence::Dna("ATGAAATAA").value();
  auto orfs = FindOrfs(dna, 1);
  ASSERT_TRUE(orfs.ok());
  ASSERT_EQ(orfs->size(), 1u);
  EXPECT_EQ((*orfs)[0].frame, 1);
  EXPECT_EQ((*orfs)[0].begin, 0u);
  EXPECT_EQ((*orfs)[0].end, 9u);
  EXPECT_EQ((*orfs)[0].protein.ToString(), "MK");
}

TEST(OpsTest, FindOrfsOffsetFrame) {
  auto dna = NucleotideSequence::Dna("GGATGAAATAAGG").value();
  auto orfs = FindOrfs(dna, 1);
  ASSERT_TRUE(orfs.ok());
  ASSERT_GE(orfs->size(), 1u);
  const Orf& orf = (*orfs)[0];
  EXPECT_EQ(orf.frame, 3);  // Offset 2 => third forward frame.
  EXPECT_EQ(orf.begin, 2u);
  EXPECT_EQ(orf.protein.ToString(), "MK");
}

TEST(OpsTest, FindOrfsReverseStrand) {
  // Reverse complement of ATGAAATAA.
  auto dna = NucleotideSequence::Dna("ATGAAATAA").value().ReverseComplement();
  auto orfs = FindOrfs(dna, 1);
  ASSERT_TRUE(orfs.ok());
  ASSERT_EQ(orfs->size(), 1u);
  EXPECT_LT((*orfs)[0].frame, 0);
  EXPECT_EQ((*orfs)[0].protein.ToString(), "MK");
}

TEST(OpsTest, FindOrfsMinLengthFilters) {
  auto dna = NucleotideSequence::Dna("ATGAAATAA").value();
  EXPECT_EQ(FindOrfs(dna, 2)->size(), 1u);
  EXPECT_EQ(FindOrfs(dna, 3)->size(), 0u);
}

TEST(OpsTest, FindOrfsRequiresStop) {
  auto dna = NucleotideSequence::Dna("ATGAAAAAA").value();
  EXPECT_EQ(FindOrfs(dna, 1)->size(), 0u);
}

TEST(OpsTest, FindOrfsRejectsRna) {
  auto rna = NucleotideSequence::Rna("AUG").value();
  EXPECT_TRUE(FindOrfs(rna, 1).status().IsInvalidArgument());
}

// ------------------------------------------------------------- Digestion.

TEST(OpsTest, DigestCutsAtEcoRiSites) {
  auto enzyme = EnzymeByName("EcoRI").value();
  auto dna = NucleotideSequence::Dna("AAGAATTCTT").value();
  auto frags = Digest(dna, enzyme);
  ASSERT_TRUE(frags.ok());
  ASSERT_EQ(frags->size(), 2u);
  EXPECT_EQ((*frags)[0].ToString(), "AAG");       // Cut after G^AATTC.
  EXPECT_EQ((*frags)[1].ToString(), "AATTCTT");
}

TEST(OpsTest, DigestWithNoSiteReturnsWholeSequence) {
  auto enzyme = EnzymeByName("EcoRI").value();
  auto dna = NucleotideSequence::Dna("CCCCCC").value();
  auto frags = Digest(dna, enzyme);
  ASSERT_TRUE(frags.ok());
  ASSERT_EQ(frags->size(), 1u);
  EXPECT_EQ((*frags)[0], dna);
}

TEST(OpsTest, DigestFragmentsReassemble) {
  Rng rng(5);
  std::string text = rng.RandomDna(2000);
  auto dna = NucleotideSequence::Dna(text).value();
  for (const RestrictionEnzyme& enzyme : BuiltinEnzymes()) {
    auto frags = Digest(dna, enzyme);
    ASSERT_TRUE(frags.ok());
    std::string joined;
    for (const auto& f : *frags) joined += f.ToString();
    EXPECT_EQ(joined, text) << enzyme.name;
  }
}

TEST(OpsTest, EnzymeLookup) {
  EXPECT_TRUE(EnzymeByName("ecori").ok());  // Case-insensitive.
  EXPECT_TRUE(EnzymeByName("XyzI").status().IsNotFound());
}

// ------------------------------------------------------------ CodonUsage.

TEST(OpsTest, CodonUsageCountsCodingCodons) {
  MRna m;
  m.sequence = NucleotideSequence::Rna("AUGAAAAAAGUUUAA").value();
  auto usage = CodonUsage(m);
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ((*usage)["AUG"], 1u);
  EXPECT_EQ((*usage)["AAA"], 2u);
  EXPECT_EQ((*usage)["GUU"], 1u);
  EXPECT_EQ((*usage)["UAA"], 1u);
  EXPECT_EQ(usage->count("CCC"), 0u);
}

TEST(OpsTest, CodonUsageSkipsAmbiguousCodons) {
  MRna m;
  m.sequence = NucleotideSequence::Rna("AUGNNNUAA").value();
  auto usage = CodonUsage(m);
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ((*usage)["AUG"], 1u);
  EXPECT_EQ(usage->size(), 2u);  // AUG and UAA only.
}

// ------------------------------------------------ Extended operations.

TEST(OpsTest, MeltingTemperatureWallaceAndGcFormula) {
  // Wallace rule below 14 bases: 2(A+T) + 4(G+C).
  auto oligo = NucleotideSequence::Dna("ACGTACGT").value();  // 4 AT, 4 GC.
  EXPECT_DOUBLE_EQ(MeltingTemperatureCelsius(oligo).value(), 24.0);
  // GC formula at >= 14 bases.
  auto longer = NucleotideSequence::Dna("ACGTACGTACGTACGT").value();
  EXPECT_NEAR(MeltingTemperatureCelsius(longer).value(),
              64.9 + 41.0 * (8.0 - 16.4) / 16.0, 1e-9);
  // Errors.
  EXPECT_TRUE(MeltingTemperatureCelsius(NucleotideSequence())
                  .status()
                  .IsInvalidArgument());
  auto ambiguous = NucleotideSequence::Dna("ACGN").value();
  EXPECT_TRUE(
      MeltingTemperatureCelsius(ambiguous).status().IsInvalidArgument());
}

TEST(OpsTest, ReverseTranslateProducesDegenerateCodons) {
  auto protein = seq::ProteinSequence::FromString("MAW").value();
  auto dna = ReverseTranslate(protein);
  ASSERT_TRUE(dna.ok()) << dna.status().ToString();
  ASSERT_EQ(dna->size(), 9u);
  // Methionine has the unique codon ATG; tryptophan TGG; alanine GCN.
  EXPECT_EQ(dna->Subsequence(0, 3)->ToString(), "ATG");
  EXPECT_EQ(dna->Subsequence(3, 3)->ToString(), "GCN");
  EXPECT_EQ(dna->Subsequence(6, 3)->ToString(), "TGG");
}

TEST(OpsTest, ReverseTranslateRoundTripsThroughTranslation) {
  // Every concrete expansion of the degenerate DNA must translate back to
  // the original protein; the ambiguity-aware Translate checks exactly
  // that: unanimous codons resolve, others stay X — so translating the
  // degenerate sequence directly must reproduce the protein.
  auto protein = seq::ProteinSequence::FromString("MKVLAGW").value();
  auto dna = ReverseTranslate(protein).value();
  auto table = seq::CodonTable::ByNcbiId(1).value();
  std::string back;
  for (size_t i = 0; i + 3 <= dna.size(); i += 3) {
    back.push_back(
        table->Translate(dna.At(i), dna.At(i + 1), dna.At(i + 2)));
  }
  // Residues with codons split across incompatible base sets (L, R, S)
  // may degrade to X; the others must survive. MKV*AGW uses none of the
  // six-codon residues except L.
  EXPECT_EQ(back.size(), protein.size());
  for (size_t i = 0; i < back.size(); ++i) {
    if (back[i] != 'X') {
      EXPECT_EQ(back[i], protein.At(i)) << i;
    }
  }
  EXPECT_EQ(back[0], 'M');
  EXPECT_EQ(back.back(), 'W');
  // X maps to NNN; stop maps to the union of stop codons.
  auto unknown = ReverseTranslate(
      seq::ProteinSequence::FromString("X").value()).value();
  EXPECT_EQ(unknown.ToString(), "NNN");
  EXPECT_TRUE(ReverseTranslate(
                  seq::ProteinSequence::FromString("-").value())
                  .status()
                  .IsInvalidArgument());
}

TEST(OpsTest, TranslateFrameAllSix) {
  auto dna = NucleotideSequence::Dna("ATGAAATAA").value();
  EXPECT_EQ(TranslateFrame(dna, 1)->ToString(), "MK*");
  EXPECT_EQ(TranslateFrame(dna, 2)->ToString(), "*N");   // TGA AAT.
  EXPECT_EQ(TranslateFrame(dna, 3)->ToString(), "EI");   // GAA ATA.
  // Reverse strand: revcomp = TTATTTCAT.
  EXPECT_EQ(TranslateFrame(dna, -1)->ToString(), "LFH");
  EXPECT_TRUE(TranslateFrame(dna, 0).status().IsInvalidArgument());
  EXPECT_TRUE(TranslateFrame(dna, 4).status().IsInvalidArgument());
}

TEST(OpsTest, LongestOrfPicksTheLongest) {
  // Two ORFs: MK (2 aa) and MKKK (4 aa).
  auto dna = NucleotideSequence::Dna(
                 "ATGAAATAA" "CC" "ATGAAAAAGAAATAA").value();
  auto longest = LongestOrf(dna, 1);
  ASSERT_TRUE(longest.ok());
  EXPECT_EQ(longest->protein.ToString(), "MKKK");
  EXPECT_TRUE(LongestOrf(NucleotideSequence::Dna("CCCCCC").value(), 1)
                  .status()
                  .IsNotFound());
}

TEST(OpsTest, KmerProfileDistanceBehaviour) {
  Rng rng(401);
  auto a = NucleotideSequence::Dna(rng.RandomDna(500)).value();
  // Identical sequences: distance 0.
  EXPECT_DOUBLE_EQ(KmerProfileDistance(a, a).value(), 0.0);
  // A noisy copy is closer than an unrelated sequence.
  std::string noisy = a.ToString();
  for (size_t i = 0; i < noisy.size(); i += 25) noisy[i] = rng.Pick("ACGT");
  auto near = NucleotideSequence::Dna(noisy).value();
  auto unrelated = NucleotideSequence::Dna(Rng(409).RandomDna(500)).value();
  double d_near = KmerProfileDistance(a, near).value();
  double d_far = KmerProfileDistance(a, unrelated).value();
  EXPECT_LT(d_near, d_far);
  EXPECT_GT(d_near, 0.0);
  EXPECT_LE(d_far, 1.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(KmerProfileDistance(near, a).value(), d_near);
  // Validation.
  EXPECT_TRUE(KmerProfileDistance(a, a, 1).status().IsInvalidArgument());
  auto tiny = NucleotideSequence::Dna("AC").value();
  EXPECT_TRUE(KmerProfileDistance(tiny, a, 4).status().IsInvalidArgument());
}

// ------------------------------- Property sweep: decode on random genes.

class RandomGeneDecodeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGeneDecodeTest, DecodeIsDeterministicAndConfidenceBounded) {
  Rng rng(GetParam());
  // Random coding region of 5..40 codons between ATG and TAA with a
  // canonical intron inserted in the middle.
  size_t n_codons = 5 + rng.Uniform(36);
  std::string coding = "ATG";
  for (size_t i = 0; i < n_codons; ++i) {
    // Avoid stop codons inside the body: use codons starting with C.
    coding += 'C';
    coding += rng.Pick("ACGT");
    coding += rng.Pick("ACGT");
  }
  coding += "TAA";
  size_t split = 3 * (1 + rng.Uniform(n_codons));
  std::string intron = "GT" + rng.RandomDna(4 + rng.Uniform(20)) + "AG";
  Gene g;
  g.id = "R" + std::to_string(GetParam());
  g.sequence =
      NucleotideSequence::Dna(coding.substr(0, split) + intron +
                              coding.substr(split))
          .value();
  g.exons = {{0, split}, {split + intron.size(), g.sequence.size()}};
  ASSERT_TRUE(g.Validate().ok());

  auto p1 = Decode(g);
  auto p2 = Decode(g);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  EXPECT_EQ(p1->sequence, p2->sequence);
  EXPECT_EQ(p1->sequence.size(), n_codons + 1);  // Start M + body.
  EXPECT_EQ(p1->sequence.At(0), 'M');
  EXPECT_GE(p1->confidence, 0.0);
  EXPECT_LE(p1->confidence, 1.0);
  EXPECT_DOUBLE_EQ(p1->confidence, 1.0);  // Canonical intron, clean stop.
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeneDecodeTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace genalg::gdt
