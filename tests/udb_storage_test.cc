#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "base/rng.h"
#include "udb/btree.h"
#include "udb/datum.h"
#include "udb/page.h"
#include "udb/storage.h"

namespace genalg::udb {
namespace {

// ------------------------------------------------------------ SlottedPage.

TEST(SlottedPageTest, InsertGetDelete) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPage page(buffer.data());
  page.Init();
  EXPECT_EQ(page.slot_count(), 0u);
  EXPECT_EQ(page.LiveRecords(), 0u);

  std::string a = "hello";
  std::string b = "world!";
  auto slot_a = page.Insert(reinterpret_cast<const uint8_t*>(a.data()),
                            a.size());
  auto slot_b = page.Insert(reinterpret_cast<const uint8_t*>(b.data()),
                            b.size());
  ASSERT_TRUE(slot_a.ok() && slot_b.ok());
  EXPECT_EQ(*slot_a, 0);
  EXPECT_EQ(*slot_b, 1);
  EXPECT_EQ(page.LiveRecords(), 2u);

  auto got = page.Get(*slot_b);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(got->first),
                        got->second),
            "world!");

  ASSERT_TRUE(page.Delete(*slot_a).ok());
  EXPECT_TRUE(page.Get(*slot_a).status().IsNotFound());
  EXPECT_EQ(page.LiveRecords(), 1u);
  EXPECT_TRUE(page.Get(99).status().IsNotFound());
  EXPECT_TRUE(page.Delete(99).IsNotFound());
}

TEST(SlottedPageTest, FillsUntilResourceExhausted) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPage page(buffer.data());
  page.Init();
  std::vector<uint8_t> record(100, 0xAB);
  size_t inserted = 0;
  while (true) {
    auto slot = page.Insert(record.data(), record.size());
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // 8192 bytes / (100 + 4 slot bytes) ~ 78 records.
  EXPECT_GT(inserted, 70u);
  EXPECT_LT(inserted, 82u);
  EXPECT_EQ(page.LiveRecords(), inserted);
}

TEST(SlottedPageTest, NextPageChain) {
  std::vector<uint8_t> buffer(kPageSize);
  SlottedPage page(buffer.data());
  page.Init();
  EXPECT_EQ(page.next_page(), kInvalidPageId);
  page.set_next_page(77);
  EXPECT_EQ(page.next_page(), 77u);
  page.set_next_page(0x12345);
  EXPECT_EQ(page.next_page(), 0x12345u);
}

// ----------------------------------------------------------- DiskManager.

TEST(DiskManagerTest, MemoryAllocateReadWrite) {
  MemoryDiskManager disk;
  auto p0 = disk.AllocatePage();
  auto p1 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  std::vector<uint8_t> data(kPageSize, 0x5A);
  ASSERT_TRUE(disk.WritePage(*p1, data.data()).ok());
  std::vector<uint8_t> read(kPageSize);
  ASSERT_TRUE(disk.ReadPage(*p1, read.data()).ok());
  EXPECT_EQ(read, data);
  EXPECT_TRUE(disk.ReadPage(9, read.data()).IsOutOfRange());
  EXPECT_EQ(disk.PageCount(), 2u);
}

TEST(DiskManagerTest, FileBackedPersists) {
  std::string path = ::testing::TempDir() + "/genalg_disk_test.db";
  std::remove(path.c_str());
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok());
    auto page = (*disk)->AllocatePage();
    ASSERT_TRUE(page.ok());
    std::vector<uint8_t> data(kPageSize);
    for (size_t i = 0; i < kPageSize; ++i) data[i] = static_cast<uint8_t>(i);
    ASSERT_TRUE((*disk)->WritePage(*page, data.data()).ok());
  }
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ((*disk)->PageCount(), 1u);
    std::vector<uint8_t> read(kPageSize);
    ASSERT_TRUE((*disk)->ReadPage(0, read.data()).ok());
    for (size_t i = 0; i < kPageSize; ++i) {
      ASSERT_EQ(read[i], static_cast<uint8_t>(i));
    }
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------ BufferPool.

TEST(BufferPoolTest, FetchCachesAndCountsHits) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(page->first, true).ok());
  // Two fetches: first may hit (still resident), count hits/misses sanely.
  auto f1 = pool.FetchPage(page->first);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(pool.UnpinPage(page->first, false).ok());
  auto f2 = pool.FetchPage(page->first);
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(pool.UnpinPage(page->first, false).ok());
  EXPECT_GE(pool.hit_count(), 2u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  // Create three pages through a 2-frame pool.
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    page->second[0] = static_cast<uint8_t>(i + 1);
    ids.push_back(page->first);
    ASSERT_TRUE(pool.UnpinPage(page->first, true).ok());
  }
  // All three pages must read back with their content despite eviction.
  for (int i = 0; i < 3; ++i) {
    auto frame = pool.FetchPage(ids[i]);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ((*frame)[0], static_cast<uint8_t>(i + 1));
    ASSERT_TRUE(pool.UnpinPage(ids[i], false).ok());
  }
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  auto p1 = pool.NewPage();
  auto p2 = pool.NewPage();
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Both frames pinned; a third page cannot be materialized.
  auto p3 = pool.NewPage();
  EXPECT_TRUE(p3.status().IsResourceExhausted());
  ASSERT_TRUE(pool.UnpinPage(p1->first, false).ok());
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(BufferPoolTest, UnpinValidation) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  EXPECT_TRUE(pool.UnpinPage(5, false).IsNotFound());
  auto page = pool.NewPage();
  ASSERT_TRUE(pool.UnpinPage(page->first, false).ok());
  EXPECT_TRUE(pool.UnpinPage(page->first, false).IsFailedPrecondition());
}

// -------------------------------------------------------------- HeapFile.

TEST(HeapFileTest, InsertGetDeleteUpdate) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 16);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  std::vector<uint8_t> rec1 = {1, 2, 3};
  std::vector<uint8_t> rec2 = {9, 9};
  auto id1 = heap->Insert(rec1);
  auto id2 = heap->Insert(rec2);
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_EQ(heap->Get(*id1).value(), rec1);
  EXPECT_EQ(heap->Get(*id2).value(), rec2);
  EXPECT_EQ(heap->Count().value(), 2u);

  ASSERT_TRUE(heap->Delete(*id1).ok());
  EXPECT_TRUE(heap->Get(*id1).status().IsNotFound());
  EXPECT_EQ(heap->Count().value(), 1u);

  std::vector<uint8_t> rec3 = {7, 7, 7, 7};
  auto id3 = heap->Update(*id2, rec3);
  ASSERT_TRUE(id3.ok());
  EXPECT_EQ(heap->Get(*id3).value(), rec3);
}

TEST(HeapFileTest, GrowsAcrossPagesAndScansInOrder) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  // 500 records x ~500 bytes: needs ~35 pages through an 8-frame pool.
  Rng rng(83);
  std::vector<std::vector<uint8_t>> records;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> rec(400 + rng.Uniform(200));
    for (auto& byte : rec) byte = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(heap->Insert(rec).ok());
    records.push_back(std::move(rec));
  }
  EXPECT_GT(disk.PageCount(), 20u);
  size_t idx = 0;
  ASSERT_TRUE(heap->Scan([&](RecordId, const uint8_t* data,
                             size_t size) -> Status {
                    EXPECT_EQ(std::vector<uint8_t>(data, data + size),
                              records[idx]);
                    ++idx;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(idx, records.size());
}

TEST(HeapFileTest, ScanSkipsDeleted) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  auto heap = HeapFile::Create(&pool);
  std::vector<RecordId> ids;
  for (uint8_t i = 0; i < 10; ++i) {
    ids.push_back(heap->Insert({i}).value());
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(heap->Delete(ids[i]).ok());
  }
  std::vector<uint8_t> seen;
  ASSERT_TRUE(heap->Scan([&](RecordId, const uint8_t* data,
                             size_t) -> Status {
                    seen.push_back(data[0]);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint8_t>{1, 3, 5, 7, 9}));
}

// ----------------------------------------------------------------- BTree.

TEST(BTreeTest, InsertFindSmall) {
  BTree tree(4);
  tree.Insert("b", {1, 0});
  tree.Insert("a", {2, 0});
  tree.Insert("c", {3, 0});
  EXPECT_EQ(tree.size(), 3u);
  auto hits = tree.Find("a");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].page, 2u);
  EXPECT_TRUE(tree.Find("zz").empty());
}

TEST(BTreeTest, DuplicateKeys) {
  BTree tree(4);
  for (uint32_t i = 0; i < 20; ++i) tree.Insert("dup", {i, 0});
  tree.Insert("aaa", {100, 0});
  tree.Insert("zzz", {200, 0});
  auto hits = tree.Find("dup");
  EXPECT_EQ(hits.size(), 20u);
  std::set<uint32_t> pages;
  for (RecordId rid : hits) pages.insert(rid.page);
  EXPECT_EQ(pages.size(), 20u);
}

TEST(BTreeTest, SplitsKeepAllKeysFindable) {
  BTree tree(4);  // Tiny fanout forces many splits.
  Rng rng(89);
  std::map<std::string, std::set<uint32_t>> truth;
  for (uint32_t i = 0; i < 2000; ++i) {
    std::string key = std::to_string(rng.Uniform(300));
    tree.Insert(key, {i, 0});
    truth[key].insert(i);
  }
  EXPECT_GT(tree.height(), 2u);
  for (const auto& [key, pages] : truth) {
    auto hits = tree.Find(key);
    std::set<uint32_t> got;
    for (RecordId rid : hits) got.insert(rid.page);
    EXPECT_EQ(got, pages) << key;
  }
}

TEST(BTreeTest, RangeQueries) {
  BTree tree(8);
  for (int i = 0; i < 100; ++i) {
    // Zero-padded keys sort numerically.
    char key[8];
    std::snprintf(key, sizeof(key), "%03d", i);
    tree.Insert(key, {static_cast<uint32_t>(i), 0});
  }
  auto hits = tree.Range("010", "019");
  EXPECT_EQ(hits.size(), 10u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].page, 10 + i);
  }
  EXPECT_EQ(tree.RangeFrom("095").size(), 5u);
  EXPECT_TRUE(tree.Range("zzz", "aaa").empty());
  EXPECT_EQ(tree.Range("000", "zzz").size(), 100u);
}

TEST(BTreeTest, RemoveIsExact) {
  BTree tree(4);
  for (uint32_t i = 0; i < 50; ++i) tree.Insert("k", {i, 0});
  EXPECT_TRUE(tree.Remove("k", {25, 0}));
  EXPECT_FALSE(tree.Remove("k", {25, 0}));  // Already gone.
  EXPECT_FALSE(tree.Remove("nope", {1, 0}));
  auto hits = tree.Find("k");
  EXPECT_EQ(hits.size(), 49u);
  for (RecordId rid : hits) EXPECT_NE(rid.page, 25u);
  EXPECT_EQ(tree.size(), 49u);
}

TEST(BTreeTest, OrderedIterationProperty) {
  BTree tree(6);
  Rng rng(97);
  std::multiset<std::string> keys;
  for (uint32_t i = 0; i < 3000; ++i) {
    std::string key = std::to_string(rng.Next() % 100000);
    tree.Insert(key, {i, 0});
    keys.insert(key);
  }
  // RangeFrom("") must return every record.
  EXPECT_EQ(tree.RangeFrom("").size(), keys.size());
}

// ----------------------------------------------------------------- Datum.

TEST(DatumTest, KindsAndAccessors) {
  EXPECT_TRUE(Datum().is_null());
  EXPECT_EQ(Datum::Int(5).AsInt().value(), 5);
  EXPECT_EQ(Datum::Real(2.5).AsReal().value(), 2.5);
  EXPECT_EQ(Datum::Bool(true).AsBool().value(), true);
  EXPECT_EQ(Datum::String("x").AsString().value(), "x");
  EXPECT_TRUE(Datum::Int(5).AsBool().status().IsInvalidArgument());
  EXPECT_EQ(Datum::Int(5).AsNumber().value(), 5.0);
  EXPECT_EQ(Datum::Real(1.5).AsNumber().value(), 1.5);
}

TEST(DatumTest, CompareSemantics) {
  EXPECT_EQ(Datum::Int(1).Compare(Datum::Int(2)).value(), -1);
  EXPECT_EQ(Datum::Int(2).Compare(Datum::Real(1.5)).value(), 1);
  EXPECT_EQ(Datum::String("a").Compare(Datum::String("b")).value(), -1);
  EXPECT_EQ(Datum::Null().Compare(Datum::Int(0)).value(), -1);
  EXPECT_EQ(Datum::Null().Compare(Datum::Null()).value(), 0);
  EXPECT_TRUE(
      Datum::Int(1).Compare(Datum::String("x")).status().IsInvalidArgument());
  auto udt_a = Datum::Udt("nucseq", {1, 2});
  auto udt_b = Datum::Udt("nucseq", {1, 3});
  EXPECT_EQ(udt_a.Compare(udt_b).value(), -1);
  EXPECT_EQ(udt_a.Compare(udt_a).value(), 0);
}

TEST(DatumTest, OrderKeyPreservesOrder) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t a = static_cast<int64_t>(rng.Next());
    int64_t b = static_cast<int64_t>(rng.Next());
    bool key_less = Datum::Int(a).OrderKey() < Datum::Int(b).OrderKey();
    EXPECT_EQ(key_less, a < b) << a << " vs " << b;

    double x = (rng.NextDouble() - 0.5) * 1e9;
    double y = (rng.NextDouble() - 0.5) * 1e9;
    bool real_key_less =
        Datum::Real(x).OrderKey() < Datum::Real(y).OrderKey();
    EXPECT_EQ(real_key_less, x < y) << x << " vs " << y;
  }
}

TEST(DatumTest, SerializeRoundTrip) {
  std::vector<Datum> values = {
      Datum::Null(),          Datum::Bool(true),
      Datum::Int(-42),        Datum::Real(3.75),
      Datum::String("hello"), Datum::Udt("gene", {1, 2, 3, 4}),
  };
  BytesWriter w;
  SerializeRow(values, &w);
  BytesReader r(w.data());
  auto back = DeserializeRow(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, values);
}

TEST(DatumTest, ColumnTypeAccepts) {
  EXPECT_TRUE(ColumnType::Int().Accepts(Datum::Int(1)));
  EXPECT_TRUE(ColumnType::Int().Accepts(Datum::Null()));
  EXPECT_FALSE(ColumnType::Int().Accepts(Datum::String("x")));
  EXPECT_TRUE(ColumnType::Real().Accepts(Datum::Int(1)));  // Widening.
  EXPECT_FALSE(ColumnType::Bool().Accepts(Datum::Int(1)));
  EXPECT_TRUE(ColumnType::Udt("nucseq").Accepts(Datum::Udt("nucseq", {})));
  EXPECT_FALSE(ColumnType::Udt("nucseq").Accepts(Datum::Udt("gene", {})));
}

}  // namespace
}  // namespace genalg::udb
