file(REMOVE_RECURSE
  "CMakeFiles/genalg_udb.dir/adapter.cc.o"
  "CMakeFiles/genalg_udb.dir/adapter.cc.o.d"
  "CMakeFiles/genalg_udb.dir/btree.cc.o"
  "CMakeFiles/genalg_udb.dir/btree.cc.o.d"
  "CMakeFiles/genalg_udb.dir/database.cc.o"
  "CMakeFiles/genalg_udb.dir/database.cc.o.d"
  "CMakeFiles/genalg_udb.dir/datum.cc.o"
  "CMakeFiles/genalg_udb.dir/datum.cc.o.d"
  "CMakeFiles/genalg_udb.dir/page.cc.o"
  "CMakeFiles/genalg_udb.dir/page.cc.o.d"
  "CMakeFiles/genalg_udb.dir/sql_parser.cc.o"
  "CMakeFiles/genalg_udb.dir/sql_parser.cc.o.d"
  "CMakeFiles/genalg_udb.dir/storage.cc.o"
  "CMakeFiles/genalg_udb.dir/storage.cc.o.d"
  "libgenalg_udb.a"
  "libgenalg_udb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_udb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
