# Empty dependencies file for genalg_udb.
# This may be replaced when dependencies are built.
