
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udb/adapter.cc" "src/udb/CMakeFiles/genalg_udb.dir/adapter.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/adapter.cc.o.d"
  "/root/repo/src/udb/btree.cc" "src/udb/CMakeFiles/genalg_udb.dir/btree.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/btree.cc.o.d"
  "/root/repo/src/udb/database.cc" "src/udb/CMakeFiles/genalg_udb.dir/database.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/database.cc.o.d"
  "/root/repo/src/udb/datum.cc" "src/udb/CMakeFiles/genalg_udb.dir/datum.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/datum.cc.o.d"
  "/root/repo/src/udb/page.cc" "src/udb/CMakeFiles/genalg_udb.dir/page.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/page.cc.o.d"
  "/root/repo/src/udb/sql_parser.cc" "src/udb/CMakeFiles/genalg_udb.dir/sql_parser.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/sql_parser.cc.o.d"
  "/root/repo/src/udb/storage.cc" "src/udb/CMakeFiles/genalg_udb.dir/storage.cc.o" "gcc" "src/udb/CMakeFiles/genalg_udb.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/genalg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/genalg_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/gdt/CMakeFiles/genalg_gdt.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/genalg_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/genalg_index.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/genalg_align.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
