file(REMOVE_RECURSE
  "libgenalg_udb.a"
)
