file(REMOVE_RECURSE
  "CMakeFiles/genalg_bql.dir/bql.cc.o"
  "CMakeFiles/genalg_bql.dir/bql.cc.o.d"
  "CMakeFiles/genalg_bql.dir/render.cc.o"
  "CMakeFiles/genalg_bql.dir/render.cc.o.d"
  "libgenalg_bql.a"
  "libgenalg_bql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_bql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
