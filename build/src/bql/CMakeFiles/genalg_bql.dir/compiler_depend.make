# Empty compiler generated dependencies file for genalg_bql.
# This may be replaced when dependencies are built.
