file(REMOVE_RECURSE
  "libgenalg_bql.a"
)
