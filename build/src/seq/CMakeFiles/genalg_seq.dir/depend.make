# Empty dependencies file for genalg_seq.
# This may be replaced when dependencies are built.
