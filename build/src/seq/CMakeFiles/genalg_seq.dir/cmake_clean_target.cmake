file(REMOVE_RECURSE
  "libgenalg_seq.a"
)
