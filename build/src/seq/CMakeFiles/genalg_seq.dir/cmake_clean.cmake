file(REMOVE_RECURSE
  "CMakeFiles/genalg_seq.dir/alphabet.cc.o"
  "CMakeFiles/genalg_seq.dir/alphabet.cc.o.d"
  "CMakeFiles/genalg_seq.dir/codon_table.cc.o"
  "CMakeFiles/genalg_seq.dir/codon_table.cc.o.d"
  "CMakeFiles/genalg_seq.dir/nucleotide_sequence.cc.o"
  "CMakeFiles/genalg_seq.dir/nucleotide_sequence.cc.o.d"
  "CMakeFiles/genalg_seq.dir/protein_sequence.cc.o"
  "CMakeFiles/genalg_seq.dir/protein_sequence.cc.o.d"
  "libgenalg_seq.a"
  "libgenalg_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
