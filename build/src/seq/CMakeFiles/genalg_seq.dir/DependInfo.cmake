
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/alphabet.cc" "src/seq/CMakeFiles/genalg_seq.dir/alphabet.cc.o" "gcc" "src/seq/CMakeFiles/genalg_seq.dir/alphabet.cc.o.d"
  "/root/repo/src/seq/codon_table.cc" "src/seq/CMakeFiles/genalg_seq.dir/codon_table.cc.o" "gcc" "src/seq/CMakeFiles/genalg_seq.dir/codon_table.cc.o.d"
  "/root/repo/src/seq/nucleotide_sequence.cc" "src/seq/CMakeFiles/genalg_seq.dir/nucleotide_sequence.cc.o" "gcc" "src/seq/CMakeFiles/genalg_seq.dir/nucleotide_sequence.cc.o.d"
  "/root/repo/src/seq/protein_sequence.cc" "src/seq/CMakeFiles/genalg_seq.dir/protein_sequence.cc.o" "gcc" "src/seq/CMakeFiles/genalg_seq.dir/protein_sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/genalg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
