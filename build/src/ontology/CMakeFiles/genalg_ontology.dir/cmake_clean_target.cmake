file(REMOVE_RECURSE
  "libgenalg_ontology.a"
)
