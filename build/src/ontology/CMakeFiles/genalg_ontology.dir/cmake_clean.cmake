file(REMOVE_RECURSE
  "CMakeFiles/genalg_ontology.dir/ontology.cc.o"
  "CMakeFiles/genalg_ontology.dir/ontology.cc.o.d"
  "libgenalg_ontology.a"
  "libgenalg_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
