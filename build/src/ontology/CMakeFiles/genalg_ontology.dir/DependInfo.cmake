
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/ontology.cc" "src/ontology/CMakeFiles/genalg_ontology.dir/ontology.cc.o" "gcc" "src/ontology/CMakeFiles/genalg_ontology.dir/ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/genalg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/genalg_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/gdt/CMakeFiles/genalg_gdt.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/genalg_align.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/genalg_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
