# Empty compiler generated dependencies file for genalg_ontology.
# This may be replaced when dependencies are built.
