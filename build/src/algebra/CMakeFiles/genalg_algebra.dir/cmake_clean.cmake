file(REMOVE_RECURSE
  "CMakeFiles/genalg_algebra.dir/builtin_ops.cc.o"
  "CMakeFiles/genalg_algebra.dir/builtin_ops.cc.o.d"
  "CMakeFiles/genalg_algebra.dir/signature.cc.o"
  "CMakeFiles/genalg_algebra.dir/signature.cc.o.d"
  "CMakeFiles/genalg_algebra.dir/term.cc.o"
  "CMakeFiles/genalg_algebra.dir/term.cc.o.d"
  "CMakeFiles/genalg_algebra.dir/value.cc.o"
  "CMakeFiles/genalg_algebra.dir/value.cc.o.d"
  "libgenalg_algebra.a"
  "libgenalg_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
