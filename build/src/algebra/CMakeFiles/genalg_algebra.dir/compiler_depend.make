# Empty compiler generated dependencies file for genalg_algebra.
# This may be replaced when dependencies are built.
