file(REMOVE_RECURSE
  "libgenalg_algebra.a"
)
