file(REMOVE_RECURSE
  "libgenalg_etl.a"
)
