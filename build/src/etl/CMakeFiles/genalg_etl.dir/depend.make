# Empty dependencies file for genalg_etl.
# This may be replaced when dependencies are built.
