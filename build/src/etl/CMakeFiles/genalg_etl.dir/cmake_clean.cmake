file(REMOVE_RECURSE
  "CMakeFiles/genalg_etl.dir/diff.cc.o"
  "CMakeFiles/genalg_etl.dir/diff.cc.o.d"
  "CMakeFiles/genalg_etl.dir/integrator.cc.o"
  "CMakeFiles/genalg_etl.dir/integrator.cc.o.d"
  "CMakeFiles/genalg_etl.dir/monitor.cc.o"
  "CMakeFiles/genalg_etl.dir/monitor.cc.o.d"
  "CMakeFiles/genalg_etl.dir/pipeline.cc.o"
  "CMakeFiles/genalg_etl.dir/pipeline.cc.o.d"
  "CMakeFiles/genalg_etl.dir/source.cc.o"
  "CMakeFiles/genalg_etl.dir/source.cc.o.d"
  "CMakeFiles/genalg_etl.dir/warehouse.cc.o"
  "CMakeFiles/genalg_etl.dir/warehouse.cc.o.d"
  "libgenalg_etl.a"
  "libgenalg_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
