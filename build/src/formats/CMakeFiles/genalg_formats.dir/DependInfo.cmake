
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/embl.cc" "src/formats/CMakeFiles/genalg_formats.dir/embl.cc.o" "gcc" "src/formats/CMakeFiles/genalg_formats.dir/embl.cc.o.d"
  "/root/repo/src/formats/fasta.cc" "src/formats/CMakeFiles/genalg_formats.dir/fasta.cc.o" "gcc" "src/formats/CMakeFiles/genalg_formats.dir/fasta.cc.o.d"
  "/root/repo/src/formats/feature_text.cc" "src/formats/CMakeFiles/genalg_formats.dir/feature_text.cc.o" "gcc" "src/formats/CMakeFiles/genalg_formats.dir/feature_text.cc.o.d"
  "/root/repo/src/formats/genalgxml.cc" "src/formats/CMakeFiles/genalg_formats.dir/genalgxml.cc.o" "gcc" "src/formats/CMakeFiles/genalg_formats.dir/genalgxml.cc.o.d"
  "/root/repo/src/formats/genbank.cc" "src/formats/CMakeFiles/genalg_formats.dir/genbank.cc.o" "gcc" "src/formats/CMakeFiles/genalg_formats.dir/genbank.cc.o.d"
  "/root/repo/src/formats/tree.cc" "src/formats/CMakeFiles/genalg_formats.dir/tree.cc.o" "gcc" "src/formats/CMakeFiles/genalg_formats.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/genalg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/genalg_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/gdt/CMakeFiles/genalg_gdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
