# Empty dependencies file for genalg_formats.
# This may be replaced when dependencies are built.
