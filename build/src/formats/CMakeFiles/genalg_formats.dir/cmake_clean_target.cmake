file(REMOVE_RECURSE
  "libgenalg_formats.a"
)
