file(REMOVE_RECURSE
  "CMakeFiles/genalg_formats.dir/embl.cc.o"
  "CMakeFiles/genalg_formats.dir/embl.cc.o.d"
  "CMakeFiles/genalg_formats.dir/fasta.cc.o"
  "CMakeFiles/genalg_formats.dir/fasta.cc.o.d"
  "CMakeFiles/genalg_formats.dir/feature_text.cc.o"
  "CMakeFiles/genalg_formats.dir/feature_text.cc.o.d"
  "CMakeFiles/genalg_formats.dir/genalgxml.cc.o"
  "CMakeFiles/genalg_formats.dir/genalgxml.cc.o.d"
  "CMakeFiles/genalg_formats.dir/genbank.cc.o"
  "CMakeFiles/genalg_formats.dir/genbank.cc.o.d"
  "CMakeFiles/genalg_formats.dir/tree.cc.o"
  "CMakeFiles/genalg_formats.dir/tree.cc.o.d"
  "libgenalg_formats.a"
  "libgenalg_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
