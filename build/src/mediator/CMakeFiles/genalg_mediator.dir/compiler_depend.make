# Empty compiler generated dependencies file for genalg_mediator.
# This may be replaced when dependencies are built.
