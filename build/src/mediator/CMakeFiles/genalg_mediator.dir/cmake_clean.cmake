file(REMOVE_RECURSE
  "CMakeFiles/genalg_mediator.dir/mediator.cc.o"
  "CMakeFiles/genalg_mediator.dir/mediator.cc.o.d"
  "libgenalg_mediator.a"
  "libgenalg_mediator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_mediator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
