file(REMOVE_RECURSE
  "libgenalg_mediator.a"
)
