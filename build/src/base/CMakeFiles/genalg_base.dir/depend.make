# Empty dependencies file for genalg_base.
# This may be replaced when dependencies are built.
