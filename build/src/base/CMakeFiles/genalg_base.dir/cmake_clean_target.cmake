file(REMOVE_RECURSE
  "libgenalg_base.a"
)
