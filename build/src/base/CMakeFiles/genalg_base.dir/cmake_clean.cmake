file(REMOVE_RECURSE
  "CMakeFiles/genalg_base.dir/status.cc.o"
  "CMakeFiles/genalg_base.dir/status.cc.o.d"
  "CMakeFiles/genalg_base.dir/strings.cc.o"
  "CMakeFiles/genalg_base.dir/strings.cc.o.d"
  "libgenalg_base.a"
  "libgenalg_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
