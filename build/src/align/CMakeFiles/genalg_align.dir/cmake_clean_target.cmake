file(REMOVE_RECURSE
  "libgenalg_align.a"
)
