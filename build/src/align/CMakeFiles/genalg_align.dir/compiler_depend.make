# Empty compiler generated dependencies file for genalg_align.
# This may be replaced when dependencies are built.
