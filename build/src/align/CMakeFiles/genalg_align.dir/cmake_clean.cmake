file(REMOVE_RECURSE
  "CMakeFiles/genalg_align.dir/aligner.cc.o"
  "CMakeFiles/genalg_align.dir/aligner.cc.o.d"
  "CMakeFiles/genalg_align.dir/scoring.cc.o"
  "CMakeFiles/genalg_align.dir/scoring.cc.o.d"
  "libgenalg_align.a"
  "libgenalg_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
