# Empty dependencies file for genalg_gdt.
# This may be replaced when dependencies are built.
