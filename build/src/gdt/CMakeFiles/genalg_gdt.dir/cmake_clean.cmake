file(REMOVE_RECURSE
  "CMakeFiles/genalg_gdt.dir/entities.cc.o"
  "CMakeFiles/genalg_gdt.dir/entities.cc.o.d"
  "CMakeFiles/genalg_gdt.dir/feature.cc.o"
  "CMakeFiles/genalg_gdt.dir/feature.cc.o.d"
  "CMakeFiles/genalg_gdt.dir/ops.cc.o"
  "CMakeFiles/genalg_gdt.dir/ops.cc.o.d"
  "libgenalg_gdt.a"
  "libgenalg_gdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_gdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
