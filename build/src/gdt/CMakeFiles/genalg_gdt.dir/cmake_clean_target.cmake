file(REMOVE_RECURSE
  "libgenalg_gdt.a"
)
