file(REMOVE_RECURSE
  "CMakeFiles/genalg_index.dir/kmer_index.cc.o"
  "CMakeFiles/genalg_index.dir/kmer_index.cc.o.d"
  "CMakeFiles/genalg_index.dir/suffix_array.cc.o"
  "CMakeFiles/genalg_index.dir/suffix_array.cc.o.d"
  "libgenalg_index.a"
  "libgenalg_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genalg_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
