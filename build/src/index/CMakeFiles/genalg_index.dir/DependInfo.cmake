
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/kmer_index.cc" "src/index/CMakeFiles/genalg_index.dir/kmer_index.cc.o" "gcc" "src/index/CMakeFiles/genalg_index.dir/kmer_index.cc.o.d"
  "/root/repo/src/index/suffix_array.cc" "src/index/CMakeFiles/genalg_index.dir/suffix_array.cc.o" "gcc" "src/index/CMakeFiles/genalg_index.dir/suffix_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/genalg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/genalg_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
