# Empty compiler generated dependencies file for genalg_index.
# This may be replaced when dependencies are built.
