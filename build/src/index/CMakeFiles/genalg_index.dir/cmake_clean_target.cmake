file(REMOVE_RECURSE
  "libgenalg_index.a"
)
