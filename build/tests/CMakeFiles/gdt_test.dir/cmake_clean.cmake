file(REMOVE_RECURSE
  "CMakeFiles/gdt_test.dir/gdt_test.cc.o"
  "CMakeFiles/gdt_test.dir/gdt_test.cc.o.d"
  "gdt_test"
  "gdt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
