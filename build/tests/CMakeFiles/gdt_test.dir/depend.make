# Empty dependencies file for gdt_test.
# This may be replaced when dependencies are built.
