file(REMOVE_RECURSE
  "CMakeFiles/udb_sql_test.dir/udb_sql_test.cc.o"
  "CMakeFiles/udb_sql_test.dir/udb_sql_test.cc.o.d"
  "udb_sql_test"
  "udb_sql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udb_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
