# Empty dependencies file for udb_sql_test.
# This may be replaced when dependencies are built.
