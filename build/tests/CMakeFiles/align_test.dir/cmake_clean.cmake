file(REMOVE_RECURSE
  "CMakeFiles/align_test.dir/align_test.cc.o"
  "CMakeFiles/align_test.dir/align_test.cc.o.d"
  "align_test"
  "align_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
