# Empty dependencies file for udb_storage_test.
# This may be replaced when dependencies are built.
