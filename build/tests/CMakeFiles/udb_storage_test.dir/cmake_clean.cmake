file(REMOVE_RECURSE
  "CMakeFiles/udb_storage_test.dir/udb_storage_test.cc.o"
  "CMakeFiles/udb_storage_test.dir/udb_storage_test.cc.o.d"
  "udb_storage_test"
  "udb_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udb_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
