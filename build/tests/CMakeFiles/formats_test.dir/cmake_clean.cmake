file(REMOVE_RECURSE
  "CMakeFiles/formats_test.dir/formats_test.cc.o"
  "CMakeFiles/formats_test.dir/formats_test.cc.o.d"
  "formats_test"
  "formats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
