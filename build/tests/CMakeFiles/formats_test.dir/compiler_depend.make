# Empty compiler generated dependencies file for formats_test.
# This may be replaced when dependencies are built.
