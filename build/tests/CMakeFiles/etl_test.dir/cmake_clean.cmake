file(REMOVE_RECURSE
  "CMakeFiles/etl_test.dir/etl_test.cc.o"
  "CMakeFiles/etl_test.dir/etl_test.cc.o.d"
  "etl_test"
  "etl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
