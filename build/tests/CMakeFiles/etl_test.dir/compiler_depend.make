# Empty compiler generated dependencies file for etl_test.
# This may be replaced when dependencies are built.
