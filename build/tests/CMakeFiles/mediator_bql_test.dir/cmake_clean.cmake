file(REMOVE_RECURSE
  "CMakeFiles/mediator_bql_test.dir/mediator_bql_test.cc.o"
  "CMakeFiles/mediator_bql_test.dir/mediator_bql_test.cc.o.d"
  "mediator_bql_test"
  "mediator_bql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_bql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
