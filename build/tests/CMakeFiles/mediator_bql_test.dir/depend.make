# Empty dependencies file for mediator_bql_test.
# This may be replaced when dependencies are built.
