# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(base_test "/root/repo/build/tests/base_test")
set_tests_properties(base_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(seq_test "/root/repo/build/tests/seq_test")
set_tests_properties(seq_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gdt_test "/root/repo/build/tests/gdt_test")
set_tests_properties(gdt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(align_test "/root/repo/build/tests/align_test")
set_tests_properties(align_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algebra_test "/root/repo/build/tests/algebra_test")
set_tests_properties(algebra_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ontology_test "/root/repo/build/tests/ontology_test")
set_tests_properties(ontology_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(formats_test "/root/repo/build/tests/formats_test")
set_tests_properties(formats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(udb_storage_test "/root/repo/build/tests/udb_storage_test")
set_tests_properties(udb_storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(udb_sql_test "/root/repo/build/tests/udb_sql_test")
set_tests_properties(udb_sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(etl_test "/root/repo/build/tests/etl_test")
set_tests_properties(etl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mediator_bql_test "/root/repo/build/tests/mediator_bql_test")
set_tests_properties(mediator_bql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;genalg_add_test;/root/repo/tests/CMakeLists.txt;0;")
