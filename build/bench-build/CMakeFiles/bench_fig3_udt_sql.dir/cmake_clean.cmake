file(REMOVE_RECURSE
  "../bench/bench_fig3_udt_sql"
  "../bench/bench_fig3_udt_sql.pdb"
  "CMakeFiles/bench_fig3_udt_sql.dir/bench_fig3_udt_sql.cc.o"
  "CMakeFiles/bench_fig3_udt_sql.dir/bench_fig3_udt_sql.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_udt_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
