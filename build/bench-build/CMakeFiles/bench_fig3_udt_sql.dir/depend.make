# Empty dependencies file for bench_fig3_udt_sql.
# This may be replaced when dependencies are built.
