# Empty dependencies file for bench_ablation_flat_storage.
# This may be replaced when dependencies are built.
