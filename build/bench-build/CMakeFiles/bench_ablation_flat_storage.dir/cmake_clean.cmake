file(REMOVE_RECURSE
  "../bench/bench_ablation_flat_storage"
  "../bench/bench_ablation_flat_storage.pdb"
  "CMakeFiles/bench_ablation_flat_storage.dir/bench_ablation_flat_storage.cc.o"
  "CMakeFiles/bench_ablation_flat_storage.dir/bench_ablation_flat_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flat_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
