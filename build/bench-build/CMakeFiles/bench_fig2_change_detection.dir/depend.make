# Empty dependencies file for bench_fig2_change_detection.
# This may be replaced when dependencies are built.
