file(REMOVE_RECURSE
  "../bench/bench_fig2_change_detection"
  "../bench/bench_fig2_change_detection.pdb"
  "CMakeFiles/bench_fig2_change_detection.dir/bench_fig2_change_detection.cc.o"
  "CMakeFiles/bench_fig2_change_detection.dir/bench_fig2_change_detection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_change_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
