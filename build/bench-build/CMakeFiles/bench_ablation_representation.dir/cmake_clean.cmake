file(REMOVE_RECURSE
  "../bench/bench_ablation_representation"
  "../bench/bench_ablation_representation.pdb"
  "CMakeFiles/bench_ablation_representation.dir/bench_ablation_representation.cc.o"
  "CMakeFiles/bench_ablation_representation.dir/bench_ablation_representation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
