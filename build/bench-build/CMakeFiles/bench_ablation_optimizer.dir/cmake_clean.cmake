file(REMOVE_RECURSE
  "../bench/bench_ablation_optimizer"
  "../bench/bench_ablation_optimizer.pdb"
  "CMakeFiles/bench_ablation_optimizer.dir/bench_ablation_optimizer.cc.o"
  "CMakeFiles/bench_ablation_optimizer.dir/bench_ablation_optimizer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
