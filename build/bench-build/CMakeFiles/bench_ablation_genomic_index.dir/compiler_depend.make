# Empty compiler generated dependencies file for bench_ablation_genomic_index.
# This may be replaced when dependencies are built.
