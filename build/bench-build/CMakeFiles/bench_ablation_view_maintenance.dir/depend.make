# Empty dependencies file for bench_ablation_view_maintenance.
# This may be replaced when dependencies are built.
