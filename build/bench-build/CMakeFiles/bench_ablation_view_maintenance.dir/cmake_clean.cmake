file(REMOVE_RECURSE
  "../bench/bench_ablation_view_maintenance"
  "../bench/bench_ablation_view_maintenance.pdb"
  "CMakeFiles/bench_ablation_view_maintenance.dir/bench_ablation_view_maintenance.cc.o"
  "CMakeFiles/bench_ablation_view_maintenance.dir/bench_ablation_view_maintenance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_view_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
