file(REMOVE_RECURSE
  "../bench/bench_table1_capabilities"
  "../bench/bench_table1_capabilities.pdb"
  "CMakeFiles/bench_table1_capabilities.dir/bench_table1_capabilities.cc.o"
  "CMakeFiles/bench_table1_capabilities.dir/bench_table1_capabilities.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
