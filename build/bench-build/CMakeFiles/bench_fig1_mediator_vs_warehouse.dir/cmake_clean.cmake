file(REMOVE_RECURSE
  "../bench/bench_fig1_mediator_vs_warehouse"
  "../bench/bench_fig1_mediator_vs_warehouse.pdb"
  "CMakeFiles/bench_fig1_mediator_vs_warehouse.dir/bench_fig1_mediator_vs_warehouse.cc.o"
  "CMakeFiles/bench_fig1_mediator_vs_warehouse.dir/bench_fig1_mediator_vs_warehouse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mediator_vs_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
