# Empty compiler generated dependencies file for bench_fig1_mediator_vs_warehouse.
# This may be replaced when dependencies are built.
