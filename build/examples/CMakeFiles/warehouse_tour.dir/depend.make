# Empty dependencies file for warehouse_tour.
# This may be replaced when dependencies are built.
