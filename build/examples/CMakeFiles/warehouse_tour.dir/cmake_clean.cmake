file(REMOVE_RECURSE
  "CMakeFiles/warehouse_tour.dir/warehouse_tour.cpp.o"
  "CMakeFiles/warehouse_tour.dir/warehouse_tour.cpp.o.d"
  "warehouse_tour"
  "warehouse_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
