file(REMOVE_RECURSE
  "CMakeFiles/change_monitor.dir/change_monitor.cpp.o"
  "CMakeFiles/change_monitor.dir/change_monitor.cpp.o.d"
  "change_monitor"
  "change_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
