# Empty compiler generated dependencies file for change_monitor.
# This may be replaced when dependencies are built.
