file(REMOVE_RECURSE
  "CMakeFiles/sequence_analysis.dir/sequence_analysis.cpp.o"
  "CMakeFiles/sequence_analysis.dir/sequence_analysis.cpp.o.d"
  "sequence_analysis"
  "sequence_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
