# Empty compiler generated dependencies file for sequence_analysis.
# This may be replaced when dependencies are built.
