# Empty dependencies file for durability_tour.
# This may be replaced when dependencies are built.
