file(REMOVE_RECURSE
  "CMakeFiles/durability_tour.dir/durability_tour.cpp.o"
  "CMakeFiles/durability_tour.dir/durability_tour.cpp.o.d"
  "durability_tour"
  "durability_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
