# Empty compiler generated dependencies file for biologist_repl.
# This may be replaced when dependencies are built.
