file(REMOVE_RECURSE
  "CMakeFiles/biologist_repl.dir/biologist_repl.cpp.o"
  "CMakeFiles/biologist_repl.dir/biologist_repl.cpp.o.d"
  "biologist_repl"
  "biologist_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biologist_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
